// E7 — Theorem 2.10 / Figure 1: the sinkless-orientation reduction.
//
// Reproduces the paper's single figure as an executable pipeline: build the
// rank-2 bipartite instance B from G by the majority-ID rule, solve weak
// splitting, decode edge colors into an orientation, verify no node is a
// sink. The table sweeps the degree d and reports the instance shape
// (rank <= 2, δ_B >= ⌈d/2⌉), which solver path fired, and validity; it also
// runs the direct randomized fix baseline for comparison.

#include <iostream>
#include <string>

#include "graph/generators.hpp"
#include "orient/sinkless.hpp"
#include "reductions/sinkless.hpp"
#include "runtime/select.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n", 240));
  // --runtime=parallel [--threads=N] runs the message-passing trials on the
  // sharded runtime, --runtime=mp [--workers=N] on the forked multi-process
  // one; outputs are bit-identical to the sequential executor either way.
  const auto runtime = runtime::runtime_from_options(opts);
  const auto executor = runtime::make_executor_factory(runtime);
  bool ok = true;

  std::cout << "E7 — Figure 1 / Theorem 2.10: sinkless orientation via weak "
               "splitting\n"
            << "LOCAL executor: " << runtime::runtime_description(runtime)
            << "\n";
  Table table({"d", "delta_B", "rank_B", "solver path", "sinkless",
               "baseline rounds", "msg-passing rounds (trials)"});
  for (std::size_t d : {5, 6, 8, 12, 16, 32}) {
    const auto g = graph::gen::random_regular(n, d, rng);
    // Inspect the constructed instance directly.
    std::vector<std::uint64_t> ids(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = v;
    const auto b = reductions::build_sinkless_instance(g, ids);
    ok = ok && b.rank() <= 2 && 2 * b.min_left_degree() >= d;

    std::string algo;
    local::CostMeter meter;
    const auto orientation =
        reductions::sinkless_via_weak_splitting(g, rng, &meter, &algo);
    const bool sinkless = orient::is_sinkless(g, orientation, 1);
    ok = ok && sinkless;

    local::CostMeter baseline_meter;
    orient::sinkless_random_fix(g, rng, &baseline_meter);

    // The same protocol as a genuine message-passing program (fixed
    // O(log n) budget per Las Vegas trial).
    const auto program =
        orient::sinkless_program(g, opts.seed() + d, 1, nullptr, 30, executor);
    ok = ok && orient::is_sinkless(g, program.toward_v, 1);

    table.row()
        .num(d)
        .num(b.min_left_degree())
        .num(b.rank())
        .cell(algo)
        .cell(sinkless ? "yes" : "NO")
        .num(baseline_meter.executed_rounds())
        .cell(std::to_string(program.executed_rounds) + " (" +
              std::to_string(program.trials) + ")");
  }
  table.print(std::cout);
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (rank <= 2, delta_B >= d/2, every decoded orientation "
            << "sinkless)\n";
  return ok ? 0 : 1;
}
