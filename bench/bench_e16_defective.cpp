// E16 — Extension: the footnote-2 defective coloring ladder.
//
// Footnote 2 observes the coloring application only needs each node to have
// at most (1/2+ε)·deg neighbors *of its own color* — a defective coloring,
// strictly weaker than splitting. This experiment measures the ladder that
// iterated uniform splitting induces:
//   (a) defect vs level — defect(k) should track Δ·((1+2ε)/2)^k + O(k),
//       i.e. halve per level until the additive term dominates;
//   (b) the defective/splitting relation — every level's 2-way split is
//       simultaneously a valid defective coloring (footnote 2's direction)
//       while a defective coloring need not be a splitting (we exhibit the
//       gap by counting how often the *other*-color degree cap fails).
//
//   $ ./bench_e16_defective [--seed=1]

#include <cmath>
#include <iostream>

#include "defective/defective_coloring.hpp"
#include "graph/generators.hpp"
#include "reductions/uniform_splitting.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double eps = 0.1;
  bool ok = true;

  std::cout << "E16 — Defective coloring via iterated splitting "
               "(footnote 2 / Section 4.1 divide step)\n\n";

  std::cout << "(a) defect vs levels (paper shape: ~Δ·((1+2ε)/2)^k + O(k))\n";
  Table ladder({"Δ", "levels k", "colors 2^k", "measured defect",
                "predicted", "ok"});
  for (std::size_t d : {32, 64, 128}) {
    Rng rng(opts.seed() + d);
    const auto g = graph::gen::random_regular(1024, d, rng);
    for (std::size_t k : {1, 2, 3, 4, 5}) {
      Rng run_rng = rng.fork(k);
      const auto result = defective::defective_coloring(g, k, eps, 0, run_rng);
      const double predicted =
          static_cast<double>(d) *
              std::pow((1.0 + 2 * eps) / 2.0, static_cast<double>(k)) +
          2.0 * static_cast<double>(k);
      const bool level_ok =
          static_cast<double>(result.max_defect) <= predicted + 2.0 &&
          defective::is_defective_coloring(g, result.colors,
                                           result.max_defect);
      ok = ok && level_ok;
      ladder.row()
          .num(d)
          .num(k)
          .num(static_cast<std::size_t>(result.num_colors))
          .num(result.max_defect)
          .num(predicted, 1)
          .cell(level_ok ? "yes" : "NO");
    }
  }
  ladder.print(std::cout);

  std::cout << "\n(b) splitting => defective (footnote 2), one level\n";
  Table relation({"Δ", "split valid", "defect cap (1/2+ε)Δ", "defective"});
  for (std::size_t d : {32, 64, 128, 256}) {
    Rng rng(opts.seed() + 1000 + d);
    const auto g = graph::gen::random_regular(512, d, rng);
    const auto split = reductions::uniform_split(g, eps, 0, rng);
    // The red/blue split as a 2-coloring.
    std::vector<std::uint32_t> colors(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      colors[v] = split.is_red[v] ? 0 : 1;
    }
    const auto cap = static_cast<std::size_t>(
        std::ceil((0.5 + eps) * static_cast<double>(d)));
    const bool split_valid = reductions::is_uniform_splitting(
        g, split.is_red, eps, 0);
    const bool defective_valid =
        defective::is_defective_coloring(g, colors, cap);
    // Footnote 2's direction: a valid splitting is always a valid
    // defective coloring at the same cap.
    ok = ok && (!split_valid || defective_valid);
    relation.row()
        .num(d)
        .cell(split_valid ? "yes" : "no")
        .num(cap)
        .cell(defective_valid ? "yes" : "NO");
  }
  relation.print(std::cout);

  std::cout << "\nE16 " << (ok ? "PASS" : "FAIL")
            << " — defects track the predicted ladder and splitting implies "
               "defective\n";
  return ok ? 0 : 1;
}
