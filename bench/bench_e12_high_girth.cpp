// E12 — Theorems 5.2 / 5.3: weak splitting on girth >= 10 instances.
//
// Instances: incidence graphs of random d-regular graphs repaired to girth
// 5 (bipartite girth exactly 10, rank 2, δ = d). The table reports, for the
// randomized (Thm 5.3) and derandomized (Thm 5.2) shattering:
//   * residual rank r_H and min degree δ_H (Lemma 5.1 predicts δ_H >= 6·r_H
//     once δ/24 >= r_H — at laptop scale we report how close we get),
//   * validity and the schedule palette O(Δ²r²) of the B⁴ coloring.
// Shape checks: all outputs valid; residual rank bounded by the Lemma 5.1
// target δ/4/6-ish band rather than exploding; larger d gives (weakly)
// smaller residual fraction.

#include <iostream>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "splitting/high_girth.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  bool ok = true;

  std::cout << "E12 — Theorems 5.2/5.3: high-girth weak splitting\n";
  Table table({"d", "n_B", "girth", "algo", "valid", "resid rank",
               "resid delta", "largest comp", "sched colors", "potential"});
  double previous_frac = 1.0;
  for (std::size_t d : {6, 8, 10}) {
    const std::size_t n_base = 60 * d * d / 2;  // keeps swap repair feasible
    const auto base = graph::gen::high_girth_regular(n_base, d, 5, rng);
    const auto b = graph::gen::incidence_bipartite(base);

    splitting::HighGirthConfig config;
    config.check_girth = false;  // generator guarantees girth 10

    // Randomized (Theorem 5.3).
    splitting::HighGirthInfo rinfo;
    const auto rcolors =
        splitting::high_girth_rand_split(b, rng, nullptr, &rinfo, config);
    const bool rvalid = splitting::is_weak_splitting(b, rcolors);
    ok = ok && rvalid;
    ok = ok && rinfo.residual_rank <= b.rank();
    table.row()
        .num(d)
        .num(b.num_nodes())
        .cell("10")
        .cell("Thm 5.3 rand")
        .cell(rvalid ? "yes" : "NO")
        .num(rinfo.residual_rank)
        .num(rinfo.residual_min_degree)
        .num(rinfo.largest_component)
        .cell("-")
        .cell("-");
    const double frac = static_cast<double>(rinfo.largest_component) /
                        static_cast<double>(b.num_nodes());
    ok = ok && frac <= previous_frac + 0.05;
    previous_frac = frac;

    // Deterministic (Theorem 5.2) — the derandomized shattering is the
    // expensive path; keep it to the smaller instances.
    if (d <= 8) {
      splitting::HighGirthInfo dinfo;
      const auto dcolors =
          splitting::high_girth_det_split(b, rng, nullptr, &dinfo, config);
      const bool dvalid = splitting::is_weak_splitting(b, dcolors);
      ok = ok && dvalid;
      table.row()
          .num(d)
          .num(b.num_nodes())
          .cell("10")
          .cell("Thm 5.2 det")
          .cell(dvalid ? "yes" : "NO")
          .num(dinfo.residual_rank)
          .num(dinfo.residual_min_degree)
          .num(dinfo.largest_component)
          .num(static_cast<std::size_t>(dinfo.schedule_colors))
          .num(dinfo.initial_potential, 3);
    }
  }
  table.print(std::cout);
  std::cout << "note: the Thm 5.2 potential exceeds 1 at laptop scale (the\n"
               "theorem's constants need enormous n); validity is guaranteed\n"
               "by the residual solver, and the estimator is still checked\n"
               "to be a supermartingale on every greedy step.\n";
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (valid outputs; residual shrinking with d)\n";
  return ok ? 0 : 1;
}
