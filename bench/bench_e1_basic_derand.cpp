// E1 — Lemmas 2.1 & 2.2: the derandomized 0-round algorithm.
//
// Paper claims: for δ >= 2 log n the conditional-expectation pass scheduled
// by a B² coloring produces a valid weak splitting; Lemma 2.1 costs O(Δ·r)
// rounds, Lemma 2.2 truncates to Δ = ⌈2 log n⌉ first and costs O(r·log n).
// The table reports the initial potential (< 1 certifies success), validity,
// and the charged+executed rounds of both variants, whose ratio should track
// Δ / (2 log n).

#include <iostream>

#include "graph/generators.hpp"
#include "splitting/basic_derand.hpp"
#include "splitting/truncate.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());

  Table table({"n", "delta", "r", "potential", "valid(2.1)", "rounds(2.1)",
               "rounds(2.2)", "ratio", "Δ/2logn"});
  bool all_valid = true;
  for (std::size_t scale : {1, 2, 4, 8}) {
    const std::size_t nu = 32 * scale;
    const std::size_t nv = 64 * scale;
    const std::size_t delta = 16 * scale;  // grows faster than 2 log n
    const auto b = graph::gen::random_biregular(nu, nv, delta, rng);

    local::CostMeter direct_meter;
    splitting::BasicDerandInfo direct_info;
    const auto direct =
        splitting::basic_derand_split(b, rng, &direct_meter, &direct_info);
    const bool direct_valid = splitting::is_weak_splitting(b, direct);
    all_valid = all_valid && direct_valid;

    local::CostMeter trunc_meter;
    splitting::BasicDerandInfo trunc_info;
    const auto truncated =
        splitting::truncated_split(b, rng, &trunc_meter, &trunc_info);
    all_valid = all_valid && splitting::is_weak_splitting(b, truncated);

    const double log_n = std::log2(static_cast<double>(b.num_nodes()));
    table.row()
        .num(b.num_nodes())
        .num(delta)
        .num(b.rank())
        .num(direct_info.initial_potential, 6)
        .cell(direct_valid ? "yes" : "NO")
        .num(direct_meter.total_rounds(), 1)
        .num(trunc_meter.total_rounds(), 1)
        .num(direct_meter.total_rounds() / trunc_meter.total_rounds(), 2)
        .num(static_cast<double>(delta) / (2.0 * log_n), 2);
  }
  std::cout << "E1 — Lemma 2.1/2.2: derandomized weak splitting\n";
  table.print(std::cout);
  std::cout << (all_valid ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (all outputs valid weak splittings)\n";
  return all_valid ? 0 : 1;
}
