// E9 — Theorem 3.3: (C, λ)-multicolor splitting and the iterated reduction.
//
// (a) One-shot solvability across the (C, λ) grid with the theorem's palette
//     C' = 3 (λ >= 2/3) or ⌈3/λ⌉, certifying potential < 1 when the degree
//     is at least ~α·λ⁻¹·ln n.
// (b) The iterated chain: ⌈log_{1/λ}(2 log n)⌉ rounds reach per-class load
//     fraction 1/(2 log n) with at most C^t = polylog n colors, yielding a
//     weak multicolor splitting.

#include <cmath>
#include <iostream>

#include "graph/generators.hpp"
#include "multicolor/multicolor_splitting.hpp"
#include "multicolor/random_algorithms.hpp"
#include "multicolor/reductions.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  bool ok = true;

  std::cout << "E9 — Theorem 3.3: (C, λ)-multicolor splitting\n";
  {
    Table table({"C", "lambda", "C'", "potential", "valid"});
    for (std::uint32_t C : {4, 8, 16, 64}) {
      for (double lambda : {0.8, 0.5, 0.3}) {
        const auto b = graph::gen::random_left_regular(
            32, 160,
            static_cast<std::size_t>(std::ceil(40.0 / lambda)), rng);
        multicolor::MulticolorDerandInfo info;
        const auto colors =
            multicolor::derand_cl_multicolor(b, C, lambda, rng, nullptr, &info);
        const bool valid = multicolor::is_multicolor_splitting(
            b, colors, multicolor::cl_palette(C, lambda), lambda);
        ok = ok && valid;
        table.row()
            .num(static_cast<std::size_t>(C))
            .num(lambda, 2)
            .num(static_cast<std::size_t>(multicolor::cl_palette(C, lambda)))
            .num(info.initial_potential, 6)
            .cell(valid ? "yes" : "NO");
      }
    }
    std::cout << "(a) one-shot (C, λ) grid\n";
    table.print(std::cout);
  }
  {
    Table table({"C", "lambda", "iters", "pred iters", "colors", "max load",
                 "target frac", "weak-ok"});
    for (double lambda : {0.5, 0.3, 0.2}) {
      const std::uint32_t C = 16;
      const auto b = graph::gen::random_left_regular(40, 220, 170, rng);
      const auto result =
          multicolor::iterated_cl_multicolor(b, C, lambda, 2.0, rng);
      const double log_n = std::log2(static_cast<double>(b.num_nodes()));
      const auto predicted = static_cast<std::size_t>(
          std::ceil(std::log(2.0 * log_n) / std::log(1.0 / lambda)));
      ok = ok && result.iterations == predicted;
      ok = ok && result.achieves_weak_multicolor;
      // Theorem 3.3's palette bound: at most C'^iterations combined colors
      // (distinct used colors also cannot exceed the right-side count).
      const double palette_bound = std::pow(
          static_cast<double>(multicolor::cl_palette(C, lambda)),
          static_cast<double>(result.iterations));
      ok = ok && static_cast<double>(result.num_colors) <=
                     std::min(palette_bound,
                              static_cast<double>(b.num_right()));
      table.row()
          .num(static_cast<std::size_t>(C))
          .num(lambda, 2)
          .num(result.iterations)
          .num(predicted)
          .num(static_cast<std::size_t>(result.num_colors))
          .num(result.max_load)
          .num(result.target_load_frac, 4)
          .cell(result.achieves_weak_multicolor ? "yes" : "NO");
    }
    std::cout << "(b) iterated reduction to load fraction 1/(2 log n)\n";
    table.print(std::cout);
  }
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (grid valid; iteration count matches ceil(log_{1/λ}(2logn)); "
            << "weak multicolor achieved)\n";
  return ok ? 0 : 1;
}
