// E6 — Theorem 1.2: the randomized weak splitting algorithm at
// δ = Θ(log(r log n)).
//
// The executed round count is O(1) (two shattering rounds) with all
// remaining cost charged inside the poly(log(r log n))-sized residual
// components. We sweep n and report executed rounds, component-solve cost,
// and validity; the shape check asserts executed rounds stay constant and
// the component-charged cost grows slower than any fixed power of n.

#include <cmath>
#include <iostream>

#include "graph/generators.hpp"
#include "splitting/shattering.hpp"
#include "support/options.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  bool ok = true;

  std::cout << "E6 — Theorem 1.2: randomized weak splitting\n";
  Table table({"n", "delta~log(r log n)", "valid", "executed", "charged",
               "largest comp", "trivial-path"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t scale : {1, 2, 4, 8, 16}) {
    const std::size_t nu = 192 * scale;
    const std::size_t nv = 384 * scale;
    // δ = c·log2(r·log2 n) with c chosen so the residual stays solvable but
    // the trivial 2log n shortcut does not trigger.
    const double log_n = std::log2(static_cast<double>(nu + nv));
    const std::size_t delta = static_cast<std::size_t>(
        std::max(10.0, 2.2 * std::log2(8.0 * log_n)));
    const auto b = graph::gen::random_biregular(nu, nv, delta, rng);
    local::CostMeter meter;
    splitting::ShatteringStats stats;
    const auto colors = splitting::randomized_weak_split(b, rng, &meter, &stats);
    const bool valid = splitting::is_weak_splitting(b, colors);
    ok = ok && valid && !stats.used_trivial;
    table.row()
        .num(nu + nv)
        .num(delta)
        .cell(valid ? "yes" : "NO")
        .num(meter.executed_rounds())
        .num(meter.charged_rounds(), 0)
        .num(stats.largest_component)
        .cell(stats.used_trivial ? "yes" : "no");
    ok = ok && meter.executed_rounds() <= 4;
    xs.push_back(std::log2(static_cast<double>(nu + nv)));
    ys.push_back(std::log2(1.0 + meter.charged_rounds()));
  }
  table.print(std::cout);
  const LinearFit fit = fit_line(xs, ys);
  std::cout << "log-log slope of charged rounds vs n: "
            << format_double(fit.slope, 2)
            << " (component solving is polylog-local: slope must be < 1)\n";
  ok = ok && fit.slope < 1.0;
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (O(1) executed rounds; sublinear charged growth)\n";
  return ok ? 0 : 1;
}
