// E15 — Extension: the derandomization route the paper motivates.
//
// [GKM17]: deterministic weak splitting => network decomposition;
// [GHK16]: network decomposition => deterministic algorithms for every
// locally checkable problem. This experiment executes the second half of
// that chain and measures its shape:
//   (a) decomposition quality — blocks c and weak diameter d of the
//       randomized Linial-Saks and the deterministic ball carving
//       constructions should both scale as O(log n);
//   (b) derandomized MIS / (Δ+1)-coloring through the decompositions —
//       valid outputs with O(c·d) = O(log² n)-shaped charged rounds,
//       against Luby's O(log n) executed rounds as the randomized yardstick.
//
//   $ ./bench_e15_netdecomp [--seed=1] [--degree=8]

#include <cmath>
#include <iostream>

#include "coloring/randcolor.hpp"
#include "coloring/reduce.hpp"
#include "coloring/verify.hpp"
#include "graph/generators.hpp"
#include "mis/mis.hpp"
#include "netdecomp/decomposition.hpp"
#include "netdecomp/derandomize.hpp"
#include "local/round_stats.hpp"
#include "runtime/select.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto degree = static_cast<std::size_t>(opts.get_int("degree", 8));
  // --runtime=parallel [--threads=N] runs the message-passing executions
  // (Luby, trial coloring) on the sharded runtime, --runtime=mp
  // [--workers=N] on the forked multi-process one; outputs are
  // bit-identical.
  const auto runtime = runtime::runtime_from_options(opts);
  const auto executor = runtime::make_executor_factory(runtime);
  bool ok = true;

  std::cout << "E15 — Network decomposition and the [GHK16] derandomizer\n"
            << "LOCAL executor: " << runtime::runtime_description(runtime)
            << "\n\n";

  std::cout << "(a) decomposition quality (paper shape: c, d = O(log n))\n";
  Table quality({"n", "log2 n", "LS blocks", "LS diam", "BC blocks",
                 "BC diam"});
  for (std::size_t n : {128, 256, 512, 1024, 2048}) {
    Rng rng(opts.seed() + n);
    const auto g = graph::gen::random_regular(n, degree, rng);
    const auto ls = netdecomp::linial_saks(g, opts.seed() + n);
    const auto bc = netdecomp::ball_carving(g);
    const double logn = std::log2(static_cast<double>(n));
    // Shape checks: blocks within a constant factor of log2 n.
    ok = ok && ls.num_blocks <= static_cast<std::size_t>(8 * logn) + 8;
    ok = ok && bc.num_blocks <= static_cast<std::size_t>(logn) + 1;
    quality.row()
        .num(n)
        .num(logn, 1)
        .num(ls.num_blocks)
        .num(ls.max_weak_diameter)
        .num(bc.num_blocks)
        .num(bc.max_weak_diameter);
  }
  quality.print(std::cout);

  std::cout << "\n(b) derandomized MIS vs Luby (rounds: executed for Luby, "
               "charged O(c*d) for sweeps)\n";
  Table mis_table({"n", "luby size", "luby rounds", "sweep size",
                   "sweep rounds", "log^2 n", "valid"});
  for (std::size_t n : {128, 256, 512, 1024, 2048}) {
    Rng rng(opts.seed() + 17 * n);
    const auto g = graph::gen::random_regular(n, degree, rng);
    local::CostMeter luby_meter;
    const auto luby = mis::luby(g, opts.seed() + n, &luby_meter, 10000,
                                local::IdStrategy::kSequential, executor);
    const auto bc = netdecomp::ball_carving(g);
    local::CostMeter sweep_meter;
    const auto sweep = netdecomp::mis_via_decomposition(g, bc, &sweep_meter);
    auto count = [](const std::vector<bool>& s) {
      std::size_t c = 0;
      for (bool b : s) c += b ? 1 : 0;
      return c;
    };
    const bool valid =
        coloring::is_mis(g, luby.in_mis) && coloring::is_mis(g, sweep);
    ok = ok && valid;
    const double logn = std::log2(static_cast<double>(n));
    mis_table.row()
        .num(n)
        .num(count(luby.in_mis))
        .num(luby_meter.total_rounds(), 1)
        .num(count(sweep))
        .num(sweep_meter.total_rounds(), 1)
        .num(logn * logn, 1)
        .cell(valid ? "yes" : "NO");
  }
  mis_table.print(std::cout);

  std::cout << "\n(c) (Δ+1)-coloring: randomized trial coloring (executed "
               "rounds) vs derandomized sweep (charged rounds)\n";
  Table color_table({"n", "rand palette", "rand rounds", "sweep palette",
                     "sweep rounds", "proper"});
  for (std::size_t n : {128, 512, 2048}) {
    Rng rng(opts.seed() + 31 * n);
    const auto g = graph::gen::random_regular(n, degree, rng);
    const auto rand_outcome = coloring::randomized_coloring(
        g, opts.seed() + n, nullptr, 10000, local::IdStrategy::kSequential,
        executor);
    const auto bc = netdecomp::ball_carving(g);
    std::uint32_t palette = 0;
    local::CostMeter meter;
    const auto colors =
        netdecomp::coloring_via_decomposition(g, bc, &palette, &meter);
    const bool proper = coloring::is_proper_coloring(g, colors) &&
                        coloring::is_proper_coloring(g, rand_outcome.colors);
    ok = ok && proper && palette <= degree + 1 &&
         rand_outcome.num_colors <= degree + 1;
    color_table.row()
        .num(n)
        .num(static_cast<std::size_t>(rand_outcome.num_colors))
        .num(rand_outcome.executed_rounds)
        .num(static_cast<std::size_t>(palette))
        .num(meter.charged_rounds(), 1)
        .cell(proper ? "yes" : "NO");
  }
  color_table.print(std::cout);

  // Per-round executor trace (local::RoundStats) of the two randomized
  // message-passing executions at the largest instance: how traffic decays
  // as nodes halt is the shape the runtime's sharding and arena sizing are
  // tuned against.
  std::cout << "\n(d) per-round message/byte trace (n = 2048, "
            << runtime::runtime_description(runtime) << ")\n";
  {
    const std::size_t n = 2048;
    Rng rng(opts.seed() + 97);
    const auto g = graph::gen::random_regular(n, degree, rng);
    std::vector<local::RoundStats> trace;
    const auto traced = runtime::make_executor_factory(
        runtime,
        [&trace](const local::RoundStats& s) { trace.push_back(s); });
    const auto luby = mis::luby(g, opts.seed() + n, nullptr, 10000,
                                local::IdStrategy::kSequential, traced);
    const std::size_t luby_rounds = trace.size();
    const auto rand_col = coloring::randomized_coloring(
        g, opts.seed() + n, nullptr, 10000, local::IdStrategy::kSequential,
        traced);
    ok = ok && coloring::is_mis(g, luby.in_mis) &&
         coloring::is_proper_coloring(g, rand_col.colors);
    Table trace_table({"algo", "round", "live", "messages", "words",
                       "bytes"});
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const local::RoundStats& s = trace[i];
      trace_table.row()
          .cell(i < luby_rounds ? "luby" : "trial-color")
          .num(s.round)
          .num(s.live_nodes)
          .num(s.messages)
          .num(s.payload_words)
          .num(8 * s.payload_words);
    }
    trace_table.print(std::cout);
  }

  std::cout << "\nE15 " << (ok ? "PASS" : "FAIL")
            << " — decomposition shapes are logarithmic and both sweeps "
               "verify\n";
  return ok ? 0 : 1;
}
