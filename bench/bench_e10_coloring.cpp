// E10 — Lemma 4.1: uniform splitting => (1 + o(1))Δ coloring.
//
// Sweep Δ at fixed n/Δ density; the palette/Δ ratio must decrease toward 1
// as Δ grows (the o(1) term is 2^r/Δ + (1+ε)^r − 1), and every coloring
// must be proper. Also reports the number of splitting levels r against
// log Δ − log target.

#include <cmath>
#include <algorithm>
#include <iostream>

#include "coloring/verify.hpp"
#include "graph/generators.hpp"
#include "reductions/coloring_via_splitting.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  bool ok = true;

  std::cout << "E10 — Lemma 4.1: (1+o(1))Δ coloring via uniform splitting\n";
  Table table({"n", "Delta", "levels", "parts", "leaf Delta", "colors",
               "colors/Delta"});
  double min_ratio = 100.0;
  double max_ratio = 0.0;
  for (std::size_t delta : {32, 64, 128, 256}) {
    const std::size_t n = 4 * delta;
    const auto g = graph::gen::random_regular(n, delta, rng);
    reductions::RecursiveColoringConfig config;
    config.eps = 0.1;
    config.target_degree = 16;
    const auto result = reductions::coloring_via_splitting(g, config, rng);
    ok = ok && coloring::is_proper_coloring(g, result.colors);
    const double ratio =
        static_cast<double>(result.num_colors) / static_cast<double>(delta);
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    table.row()
        .num(n)
        .num(delta)
        .num(result.levels)
        .num(result.num_parts)
        .num(result.max_part_degree)
        .num(static_cast<std::size_t>(result.num_colors))
        .num(ratio, 3);
  }
  table.print(std::cout);
  // The true (1+o(1)) limit needs Δ* = polylog(n) depths far beyond toy
  // scale; the measurable Lemma 4.1 shape here is a palette that stays a
  // *flat, bounded* multiple of Δ (~1.5 with leaf degree 16) instead of
  // drifting upward as Δ doubles — i.e. the recursion loses only a
  // (1+ε)-factor per level, not a growing one.
  ok = ok && max_ratio < 1.7 && (max_ratio - min_ratio) < 0.2;
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (proper colorings; palette/Δ flat and bounded < 1.7Δ)\n";
  return ok ? 0 : 1;
}
