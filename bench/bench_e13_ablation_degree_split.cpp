// E13 — Ablation: the degree-splitting substrate.
//
// DESIGN.md's substitution table claims the Euler-based orientation
// (discrepancy <= 1, rounds charged per Theorem 2.3) dominates the
// Theorem 2.3 contract, and that a 0-round random orientation baseline
// (discrepancy Θ(√d)) does NOT suffice for the reductions of Section 2.
// This ablation runs DRR-I with both substrates and reports:
//   * per-iteration max discrepancy of the underlying orientation,
//   * the (δ_k, r_k) trajectory quality — with the random baseline, δ_k
//     can crash through the Lemma 2.4 floor,
//   * end-to-end Theorem 2.5 validity/quality under both substrates.

#include <iostream>

#include "graph/generators.hpp"
#include "graph/multigraph.hpp"
#include "orient/degree_split.hpp"
#include "splitting/degree_rank_reduction.hpp"
#include "splitting/deterministic.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  bool ok = true;

  std::cout << "E13 — Ablation: Euler vs random-orientation degree "
               "splitting\n";
  {
    Table table({"d", "euler max disc", "random max disc", "contract(0.1)"});
    for (std::size_t d : {8, 32, 128, 512}) {
      graph::Multigraph m(2 * d);
      Rng gen = rng.fork(d);
      for (std::size_t i = 0; i < d * d; ++i) {
        m.add_edge(static_cast<graph::NodeId>(gen.next_index(2 * d)),
                   static_cast<graph::NodeId>(gen.next_index(2 * d)));
      }
      orient::SplitConfig euler;
      euler.eps = 0.1;
      const auto euler_orient = orient::degree_split(m, euler, rng, nullptr);
      orient::SplitConfig random;
      random.eps = 0.1;
      random.method = orient::SplitMethod::kRandomBaseline;
      const auto random_orient = orient::degree_split(m, random, rng, nullptr);
      const std::size_t euler_disc = orient::max_discrepancy(m, euler_orient);
      const std::size_t random_disc = orient::max_discrepancy(m, random_orient);
      const bool euler_contract =
          orient::satisfies_split_contract(m, euler_orient, 0.1);
      ok = ok && euler_contract && euler_disc <= 1;
      table.row()
          .num(d)
          .num(euler_disc)
          .num(random_disc)
          .cell(euler_contract ? "euler: yes" : "euler: NO");
    }
    std::cout << "(a) orientation discrepancy\n";
    table.print(std::cout);
  }
  {
    Table table({"substrate", "k", "delta_k", "Lemma 2.4 floor", "r_k",
                 "floor holds"});
    bool euler_all_hold = true;
    bool random_any_violation = false;
    for (auto method : {orient::SplitMethod::kEuler,
                        orient::SplitMethod::kRandomBaseline}) {
      const auto b = graph::gen::random_biregular(256, 256, 192, rng);
      orient::SplitConfig config;
      config.eps = 0.2;
      config.method = method;
      splitting::DrrTrace trace;
      splitting::degree_rank_reduction(b, 5, config, rng, nullptr, &trace);
      for (std::size_t i = 0; i <= 5; ++i) {
        const double floor =
            splitting::drr1_delta_bound(b.min_left_degree(), config.eps, i);
        const bool holds =
            static_cast<double>(trace.min_left_degree[i]) > floor;
        if (method == orient::SplitMethod::kEuler) {
          euler_all_hold = euler_all_hold && holds;
        } else if (!holds) {
          random_any_violation = true;
        }
        table.row()
            .cell(method == orient::SplitMethod::kEuler ? "euler" : "random")
            .num(i)
            .num(trace.min_left_degree[i])
            .num(floor, 1)
            .num(trace.rank[i])
            .cell(holds ? "yes" : "NO");
      }
    }
    std::cout << "(b) DRR-I trajectories (eps = 0.2, delta = 192)\n";
    table.print(std::cout);
    ok = ok && euler_all_hold;
    std::cout << "random baseline violated the Lemma 2.4 floor: "
              << (random_any_violation ? "yes (expected at some step)"
                                       : "no (got lucky this seed)")
              << "\n";
  }
  {
    // End-to-end: Theorem 2.5 under both substrates.
    Table table({"substrate", "valid", "reduced delta", "reduced r"});
    for (auto method : {orient::SplitMethod::kEuler,
                        orient::SplitMethod::kRandomBaseline}) {
      const auto b = graph::gen::random_biregular(48, 512, 480, rng);
      local::CostMeter meter;
      splitting::DeterministicInfo info;
      bool valid = false;
      try {
        const auto colors = splitting::deterministic_weak_split(
            b, rng, &meter, &info, 0, method);
        valid = splitting::is_weak_splitting(b, colors);
      } catch (const std::exception&) {
        valid = false;  // substrate failure surfaced as an exception
      }
      if (method == orient::SplitMethod::kEuler) ok = ok && valid;
      table.row()
          .cell(method == orient::SplitMethod::kEuler ? "euler" : "random")
          .cell(valid ? "yes" : "NO")
          .num(info.reduced_min_degree)
          .num(info.reduced_rank);
    }
    std::cout << "(c) Theorem 2.5 end-to-end\n";
    table.print(std::cout);
  }
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (Euler meets contract and sustains the pipeline)\n";
  return ok ? 0 : 1;
}
