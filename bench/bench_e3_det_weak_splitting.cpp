// E3 — Theorem 2.5 (main deterministic result): weak splitting in
// O(r/δ·log²n + log³n·(log log n)^1.1) rounds for δ >= 2 log n.
//
// Two sweeps:
//   (a) fixed r/δ, growing n — total rounds should grow polylogarithmically
//       (we fit rounds against log³n·(loglog n)^1.1 and report the ratio);
//   (b) fixed n, growing r/δ — rounds should grow linearly in r/δ.
// Shape checks: all outputs valid; in sweep (b) rounds are monotone in r/δ
// and the normalized cost rounds/(r/δ) stays within a constant band.

#include <cmath>
#include <iostream>

#include "graph/generators.hpp"
#include "splitting/deterministic.hpp"
#include "support/options.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  bool ok = true;

  std::cout << "E3 — Theorem 2.5: deterministic weak splitting\n";
  {
    Table table({"n", "delta", "r", "r/delta", "rounds", "log^3n*(llogn)^1.1",
                 "rounds/shape"});
    std::vector<double> xs;
    std::vector<double> ys;
    for (std::size_t scale : {1, 2, 4, 8, 16}) {
      const std::size_t nu = 48 * scale;
      const std::size_t nv = 96 * scale;
      const std::size_t delta = 24 + 4 * scale;  // stays >= 2 log n
      const auto b = graph::gen::random_biregular(nu, nv, delta, rng);
      local::CostMeter meter;
      const auto colors = splitting::deterministic_weak_split(b, rng, &meter);
      ok = ok && splitting::is_weak_splitting(b, colors);
      const double n = static_cast<double>(b.num_nodes());
      const double shape = std::pow(std::log2(n), 3.0) *
                           std::pow(std::log2(std::log2(n)), 1.1);
      table.row()
          .num(b.num_nodes())
          .num(delta)
          .num(b.rank())
          .num(static_cast<double>(b.rank()) / delta, 2)
          .num(meter.total_rounds(), 0)
          .num(shape, 0)
          .num(meter.total_rounds() / shape, 3);
      xs.push_back(std::log2(n));
      ys.push_back(std::log2(meter.total_rounds()));
    }
    std::cout << "(a) growing n at near-constant r/delta\n";
    table.print(std::cout);
    const LinearFit fit = fit_line(xs, ys);
    std::cout << "log-log slope of rounds vs n: " << format_double(fit.slope, 2)
              << " (polylog expected: slope << 1 asymptotically; "
              << "sub-linear required)\n";
    ok = ok && fit.slope < 0.9;
  }
  {
    Table table({"r/delta", "delta", "r", "rounds", "rounds/(r/delta)"});
    Summary normalized;
    double previous = 0.0;
    bool monotone = true;
    for (std::size_t ratio : {1, 2, 4, 8, 16}) {
      const std::size_t delta = 32;
      // rank ~ nu*delta/nv: grow nu at fixed nv = 2*delta to hit the
      // target r/delta ratio while keeping the instance simple (delta <= nv).
      const std::size_t nv = 64;
      const std::size_t nu = 64 * ratio;
      const auto b = graph::gen::random_biregular(nu, nv, delta, rng);
      local::CostMeter meter;
      const auto colors = splitting::deterministic_weak_split(b, rng, &meter);
      ok = ok && splitting::is_weak_splitting(b, colors);
      const double rd = static_cast<double>(b.rank()) / delta;
      table.row()
          .num(rd, 2)
          .num(delta)
          .num(b.rank())
          .num(meter.total_rounds(), 0)
          .num(meter.total_rounds() / std::max(1.0, rd), 0);
      normalized.add(meter.total_rounds() / std::max(1.0, rd));
      monotone = monotone && meter.total_rounds() >= previous * 0.8;
      previous = meter.total_rounds();
    }
    std::cout << "(b) growing r/delta at fixed n\n";
    table.print(std::cout);
    ok = ok && monotone;
    ok = ok && normalized.max() < 10.0 * normalized.min();
    std::cout << "normalized cost band: [" << format_double(normalized.min(), 0)
              << ", " << format_double(normalized.max(), 0) << "]\n";
  }
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (valid outputs; polylog growth in n; ~linear in r/δ)\n";
  return ok ? 0 : 1;
}
