// E17 — Extension: low-rank hypergraph degree splitting and matching.
//
// Section 1.1 attributes the deterministic edge-coloring breakthroughs
// ([FGK17]: 2Δ−1 colors, [GKMU18]: (1+o(1))Δ) to degree splitting and
// maximal matching on *low-rank hypergraphs*. This experiment measures our
// hypergraph substrate across ranks:
//   (a) splitting balance — per-vertex red fraction stays within
//       (1/2 ± ε) across rank r ∈ {2..16}, and the derandomized path fires
//       whenever the two-sided potential is < 1 (high degree);
//   (b) maximal matching — greedy vs Luby-on-conflict-graph sizes and
//       rounds; matching size must be >= m / (r·(Δ−1)+1) (each matched
//       hyperedge blocks at most r·(Δ−1) others).
//
//   $ ./bench_e17_hypergraph [--seed=1]

#include <algorithm>
#include <cmath>
#include <iostream>

#include "hypergraph/hypergraph.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  bool ok = true;

  std::cout << "E17 — Low-rank hypergraph splitting and matching "
               "(the §1.1 edge-coloring machinery)\n\n";

  std::cout << "(a) hyperedge splitting across ranks (eps = 0.2, "
               "threshold 8)\n";
  Table split({"rank r", "vertices", "degree", "worst red fraction",
               "derandomized", "valid"});
  for (std::size_t r : {2, 3, 4, 8, 16}) {
    Rng rng(opts.seed() + r);
    const auto h = hypergraph::random_regular_hypergraph(256, 64, r, rng);
    const auto result = hypergraph::hyperedge_split(h, 0.2, 8, rng);
    double worst = 0.5;
    for (hypergraph::VertexId v = 0; v < h.num_vertices(); ++v) {
      if (h.degree(v) < 8) continue;
      std::size_t red = 0;
      for (hypergraph::HyperedgeId e : h.incident(v)) {
        if (result.is_red[e]) ++red;
      }
      const double frac =
          static_cast<double>(red) / static_cast<double>(h.degree(v));
      worst = std::max({worst, frac, 1.0 - frac});
    }
    const bool valid = hypergraph::is_hyperedge_split(h, result.is_red, 0.2, 8);
    ok = ok && valid && worst <= 0.5 + 0.2 + 0.05;
    split.row()
        .num(r)
        .num(h.num_vertices())
        .num(h.max_degree())
        .num(worst, 3)
        .cell(result.derandomized ? "yes" : "no (WalkSAT)")
        .cell(valid ? "yes" : "NO");
  }
  split.print(std::cout);

  std::cout << "\n(b) maximal matching: greedy vs Luby on the conflict "
               "graph\n";
  Table match({"rank r", "hyperedges m", "greedy size", "luby size",
               "luby rounds", "size floor", "valid"});
  for (std::size_t r : {2, 3, 4, 8}) {
    Rng rng(opts.seed() + 100 + r);
    const auto h = hypergraph::random_regular_hypergraph(240, 6, r, rng);
    const auto greedy = hypergraph::greedy_maximal_matching(h);
    std::size_t rounds = 0;
    const auto luby = hypergraph::randomized_maximal_matching(
        h, opts.seed() + r, &rounds);
    auto count = [](const std::vector<bool>& s) {
      std::size_t c = 0;
      for (bool b : s) c += b ? 1 : 0;
      return c;
    };
    // Each matched hyperedge blocks at most r*(Δ−1) others.
    const std::size_t floor_size =
        h.num_edges() / (r * (h.max_degree() - 1) + 1);
    const bool valid = hypergraph::is_maximal_matching(h, greedy) &&
                       hypergraph::is_maximal_matching(h, luby) &&
                       count(greedy) >= floor_size &&
                       count(luby) >= floor_size;
    ok = ok && valid;
    match.row()
        .num(r)
        .num(h.num_edges())
        .num(count(greedy))
        .num(count(luby))
        .num(rounds)
        .num(floor_size)
        .cell(valid ? "yes" : "NO");
  }
  match.print(std::cout);

  std::cout << "\nE17 " << (ok ? "PASS" : "FAIL")
            << " — splits balanced at every rank, matchings valid and "
               "above the blocking floor\n";
  return ok ? 0 : 1;
}
