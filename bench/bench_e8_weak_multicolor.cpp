// E8 — Lemma 3.1 / Theorem 3.2: C-weak multicolor splitting.
//
// (a) The 0-round randomized process (uniform color among ⌈2 log n⌉): the
//     measured failure rate must be far below 1 in the theorem's degree
//     regime deg >= (2 log n + 1)·ln n.
// (b) The derandomized SLOCAL(2) version certifies success (potential < 1)
//     and the full Theorem 3.2 reduction solves weak splitting through the
//     multicolor black box, in O(C) scheduled rounds.

#include <iostream>

#include "graph/generators.hpp"
#include "multicolor/multicolor_splitting.hpp"
#include "multicolor/random_algorithms.hpp"
#include "multicolor/reductions.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  const int trials = static_cast<int>(opts.get_int("trials", 10));
  bool ok = true;

  std::cout << "E8 — Theorem 3.2: C-weak multicolor splitting\n";
  Table table({"n", "C'", "deg thr", "rand fail rate", "derand pot",
               "reduction valid", "weak pot"});
  for (std::size_t scale : {1, 2, 4}) {
    const std::size_t nu = 40 * scale;
    const std::size_t nv = 240 * scale;
    const auto params = multicolor::weak_multicolor_params(nu + nv);
    // Theorem 3.2 needs deg >= (2 log n + 1)·ln^c n with c > 1; a 30%
    // multiplicative margin over the c = 1 threshold plays that role (an
    // additive margin does not — the union-bound potential crosses 1).
    const std::size_t degree = params.degree_threshold +
                               (params.degree_threshold * 3 + 9) / 10;
    const auto b = graph::gen::random_left_regular(nu, nv, degree, rng);

    int failures = 0;
    for (int t = 0; t < trials; ++t) {
      const auto colors =
          multicolor::random_uniform_colors(b, params.num_colors, rng);
      if (!multicolor::is_weak_multicolor_splitting(
              b, colors, params.num_colors, params.required_colors,
              params.degree_threshold)) {
        ++failures;
      }
    }
    const double fail_rate = static_cast<double>(failures) / trials;

    multicolor::MulticolorDerandInfo dinfo;
    const auto derand =
        multicolor::derand_weak_multicolor(b, params.num_colors, rng, nullptr,
                                           &dinfo);
    ok = ok && multicolor::is_weak_multicolor_splitting(
                   b, derand, params.num_colors, params.required_colors,
                   params.degree_threshold);
    ok = ok && dinfo.initial_potential < 1.0;

    multicolor::WeakViaMulticolorInfo rinfo;
    const auto weak =
        multicolor::weak_splitting_via_multicolor(b, rng, nullptr, &rinfo);
    const bool reduction_valid = splitting::is_weak_splitting(b, weak);
    ok = ok && reduction_valid;
    ok = ok && fail_rate <= 0.5;

    table.row()
        .num(nu + nv)
        .num(static_cast<std::size_t>(params.num_colors))
        .num(params.degree_threshold)
        .num(fail_rate, 3)
        .num(dinfo.initial_potential, 6)
        .cell(reduction_valid ? "yes" : "NO")
        .num(rinfo.weak_potential, 6);
  }
  table.print(std::cout);
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (derand potential < 1, reduction output valid)\n";
  return ok ? 0 : 1;
}
