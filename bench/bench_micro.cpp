// Micro-benchmarks (google-benchmark) of the hot substrate operations:
// Euler partition, power-graph coloring, derandomization throughput,
// verifier throughput, instance generation, and LOCAL-executor round
// throughput (sequential Network vs sharded ParallelNetwork).
//
// Custom main: in addition to the normal console output, `--json=FILE`
// writes a machine-readable trajectory record (schema distsplit-bench-v1:
// per-benchmark ns/op + user counters, plus run provenance) which
// tools/bench_compare.py diffs against bench/BENCH_BASELINE.json in CI.

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <numeric>
#include <thread>

#include "support/provenance.hpp"

#include "coloring/distance_coloring.hpp"
#include "derand/engine.hpp"
#include "derand/events.hpp"
#include "graph/format.hpp"
#include "graph/generators.hpp"
#include "graph/insitu.hpp"
#include "mis/mis.hpp"
#include "netdecomp/decomposition.hpp"
#include "orient/euler.hpp"
#include "graph/properties.hpp"
#include "dist/distributed_network.hpp"
#include "local/ids.hpp"
#include "local/network.hpp"
#include "net/loopback.hpp"
#include "net/tcp_network.hpp"
#include "obs/publish.hpp"
#include "obs/recorder.hpp"
#include "orient/euler.hpp"
#include "runtime/parallel_network.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "splitting/trivial_random.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/rng.hpp"

namespace {

using namespace ds;

graph::Multigraph make_multigraph(std::size_t n, std::size_t m) {
  Rng rng(n + m);
  graph::Multigraph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    g.add_edge(static_cast<graph::NodeId>(rng.next_index(n)),
               static_cast<graph::NodeId>(rng.next_index(n)));
  }
  return g;
}

void BM_EulerOrientation(benchmark::State& state) {
  const auto g = make_multigraph(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(4 * state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(orient::euler_orientation(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_EulerOrientation)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PowerColoringB2(benchmark::State& state) {
  Rng rng(1);
  const auto b = graph::gen::random_biregular(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(2 * state.range(0)), 16, rng);
  const auto unified = b.unified();
  Rng id_rng(2);
  const auto ids =
      local::assign_ids(unified, local::IdStrategy::kSequential, id_rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coloring::color_power(unified, 2, ids, nullptr));
  }
}
BENCHMARK(BM_PowerColoringB2)->Arg(64)->Arg(128)->Arg(256);

void BM_WeakSplittingDerand(benchmark::State& state) {
  Rng rng(3);
  const auto b = graph::gen::random_biregular(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(2 * state.range(0)), 16, rng);
  const derand::Problem problem = derand::weak_splitting_problem(b);
  std::vector<std::uint32_t> order(b.num_right());
  std::iota(order.begin(), order.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(derand::derandomize(problem, order));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(b.num_right()));
}
BENCHMARK(BM_WeakSplittingDerand)->Arg(128)->Arg(512)->Arg(2048);

void BM_VerifierThroughput(benchmark::State& state) {
  Rng rng(4);
  const auto b = graph::gen::random_biregular(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(2 * state.range(0)), 24, rng);
  const auto colors = splitting::trivial_random_split(b, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(splitting::is_weak_splitting(b, colors));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(b.num_edges()));
}
BENCHMARK(BM_VerifierThroughput)->Arg(512)->Arg(4096);

void BM_BallGathering(benchmark::State& state) {
  Rng rng(5);
  const auto g =
      graph::gen::random_regular(static_cast<std::size_t>(state.range(0)), 8,
                                 rng);
  graph::NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ball(g, v, 2));
    v = (v + 1) % static_cast<graph::NodeId>(g.num_nodes());
  }
}
BENCHMARK(BM_BallGathering)->Arg(1024)->Arg(8192);

void BM_RandomBiregular(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::gen::random_biregular(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(2 * state.range(0)), 16, rng));
  }
}
BENCHMARK(BM_RandomBiregular)->Arg(128)->Arg(1024);

void BM_AlternatingBicoloring(benchmark::State& state) {
  Rng rng(7);
  const auto g = graph::gen::random_regular(
      static_cast<std::size_t>(state.range(0)), 16, rng);
  graph::Multigraph m(g.num_nodes());
  for (const graph::Edge& e : g.edges()) m.add_edge(e.u, e.v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(orient::alternating_bicoloring(m));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.num_edges()));
}
BENCHMARK(BM_AlternatingBicoloring)->Arg(512)->Arg(4096);

void BM_LubyMis(benchmark::State& state) {
  Rng rng(8);
  const auto g = graph::gen::random_regular(
      static_cast<std::size_t>(state.range(0)), 8, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mis::luby(g, seed++));
  }
}
BENCHMARK(BM_LubyMis)->Arg(256)->Arg(1024);

void BM_BallCarving(benchmark::State& state) {
  Rng rng(9);
  const auto g = graph::gen::random_regular(
      static_cast<std::size_t>(state.range(0)), 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netdecomp::ball_carving(g));
  }
}
BENCHMARK(BM_BallCarving)->Arg(256)->Arg(1024);

// ---- LOCAL-executor round throughput ------------------------------------
// A fixed-round gossip program (each node forwards the running XOR of its
// inbox) on a torus: pure executor overhead — message routing, barriers,
// scheduling — with negligible per-node compute. Items processed = node
// rounds, so items/s is directly comparable between executors, thread
// counts, and send APIs. The writer-send variants serialize through the
// zero-allocation `Outbox` arena; the vector-send variants return a freshly
// allocated `std::vector<Message>` per node per round through the legacy
// adapter — the pair quantifies the writer-path win on the 1M-node torus.

/// Writer-API gossip: broadcast serializes straight into the arena.
class GossipProgram final : public local::NodeProgram {
 public:
  GossipProgram(const local::NodeEnv& env, std::size_t rounds)
      : env_(env), rounds_(rounds), acc_(env.uid) {}

  void send(std::size_t, local::Outbox& out) override {
    out.broadcast({acc_});
  }

  void receive(std::size_t round, const local::Inbox& inbox) override {
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      const local::MessageView msg = inbox[p];
      if (!msg.empty()) acc_ ^= msg[0] * 0x9E3779B97F4A7C15ull;
    }
    done_ = round + 1 >= rounds_;
  }

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] std::uint64_t acc() const { return acc_; }

 private:
  local::NodeEnv env_;
  std::size_t rounds_;
  std::uint64_t acc_;
  bool done_ = false;
};

/// Same gossip through the legacy vector API (one heap-allocated message
/// vector per node per round, adapter copies on receive).
class VectorGossipProgram final : public local::NodeProgram {
 public:
  VectorGossipProgram(const local::NodeEnv& env, std::size_t rounds)
      : env_(env), rounds_(rounds), acc_(env.uid) {}

  std::vector<local::Message> send_messages(std::size_t) override {
    return std::vector<local::Message>(env_.degree, local::Message{acc_});
  }

  void receive_messages(std::size_t round,
                        const std::vector<local::Message>& inbox) override {
    for (const local::Message& msg : inbox) {
      if (!msg.empty()) acc_ ^= msg[0] * 0x9E3779B97F4A7C15ull;
    }
    done_ = round + 1 >= rounds_;
  }

  [[nodiscard]] bool done() const override { return done_; }

 private:
  local::NodeEnv env_;
  std::size_t rounds_;
  std::uint64_t acc_;
  bool done_ = false;
};

constexpr std::size_t kGossipRounds = 8;

local::ProgramFactory gossip_factory() {
  return [](const local::NodeEnv& env) {
    return std::make_unique<GossipProgram>(env, kGossipRounds);
  };
}

local::ProgramFactory vector_gossip_factory() {
  return [](const local::NodeEnv& env) {
    return std::make_unique<VectorGossipProgram>(env, kGossipRounds);
  };
}

// Side of the torus: n = side^2 nodes. 1024 -> the 1M-node instance of the
// runtime acceptance target.
void BM_SequentialRounds(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto g = graph::gen::torus(side, side);
  local::Network net(g, local::IdStrategy::kSequential, 42);
  for (auto _ : state) {
    net.run(gossip_factory(), kGossipRounds + 1);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(g.num_nodes() * kGossipRounds));
}
BENCHMARK(BM_SequentialRounds)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_SequentialRoundsVectorSend(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto g = graph::gen::torus(side, side);
  local::Network net(g, local::IdStrategy::kSequential, 42);
  for (auto _ : state) {
    net.run(vector_gossip_factory(), kGossipRounds + 1);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(g.num_nodes() * kGossipRounds));
}
BENCHMARK(BM_SequentialRoundsVectorSend)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Arg pair: torus side, thread count.
void BM_ParallelRounds(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto g = graph::gen::torus(side, side);
  runtime::ParallelNetwork net(g, local::IdStrategy::kSequential, 42, threads);
  for (auto _ : state) {
    net.run(gossip_factory(), kGossipRounds + 1);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(g.num_nodes() * kGossipRounds));
}
BENCHMARK(BM_ParallelRounds)
    ->Args({64, 1})->Args({64, 8})
    ->Args({256, 1})->Args({256, 8})
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})->Args({1024, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ParallelRoundsVectorSend(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto g = graph::gen::torus(side, side);
  runtime::ParallelNetwork net(g, local::IdStrategy::kSequential, 42, threads);
  for (auto _ : state) {
    net.run(vector_gossip_factory(), kGossipRounds + 1);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(g.num_nodes() * kGossipRounds));
}
BENCHMARK(BM_ParallelRoundsVectorSend)
    ->Args({256, 8})
    ->Args({1024, 1})->Args({1024, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Cross-runtime comparison on the same torus family: the multi-process
// executor forks its worker fleet once per run() call, so the measured time
// includes fork/teardown — the realistic per-execution cost of the mp
// runtime against the sequential and thread-parallel numbers above.
// Arg pair: torus side, worker count.
void BM_DistributedRounds(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  const auto g = graph::gen::torus(side, side);
  dist::DistributedConfig config;
  config.workers = workers;
  dist::DistributedNetwork net(g, local::IdStrategy::kSequential, 42, config);
  for (auto _ : state) {
    net.run(gossip_factory(), kGossipRounds + 1);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(g.num_nodes() * kGossipRounds));
}
BENCHMARK(BM_DistributedRounds)
    ->Args({64, 1})->Args({64, 2})->Args({64, 4})
    ->Args({256, 2})->Args({256, 4})
    ->Args({1024, 2})->Args({1024, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Observability overhead on the sequential round loop: Arg 1 runs with a
// recorder installed (counters + phase spans tick every round), Arg 0 the
// plain disabled path. The disabled path must stay within noise of the
// pre-observability numbers — the handles are null and every metric call
// is one branch — while the delta between the two rows is the cost a
// --metrics/--trace run pays.
// Arg: 0 = recorder off, 1 = recorder attached, 2 = recorder attached AND
// a `SnapshotPublisher` coalescing a snapshot at every round boundary (the
// live-endpoints configuration, server idle). Arm 2 must stay within noise
// of arm 1 — the round path publishes through relaxed atomics, no locks.
void BM_MetricsOverhead(benchmark::State& state) {
  const auto g = graph::gen::torus(64, 64);
  local::Network net(g, local::IdStrategy::kSequential, 42);
  obs::Recorder recorder;
  obs::SnapshotPublisher publisher;
  if (state.range(0) != 0) net.set_recorder(&recorder);
  if (state.range(0) == 2) recorder.set_publisher(&publisher);
  for (auto _ : state) {
    net.run(gossip_factory(), kGossipRounds + 1);
    // Keep the run-to-run state bounded: drain the span buffer so the
    // instrumented rows measure steady-state recording, not vector growth
    // over thousands of iterations.
    if (state.range(0) != 0) benchmark::DoNotOptimize(recorder.drain_words());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(g.num_nodes() * kGossipRounds));
}
BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// The socket-path overhead of the same gossip rounds: a loopback TCP rank
// fleet per iteration (fork + rendezvous + rounds + teardown — the
// realistic cost of one multi-host execution, comparable to
// BM_DistributedRounds which likewise re-forks its fleet per run). Arg
// pair: torus side, rank count.
void BM_TcpLoopbackRounds(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto ranks = static_cast<std::size_t>(state.range(1));
  const auto g = graph::gen::torus(side, side);
  for (auto _ : state) {
    const net::LoopbackReport report = net::run_loopback_ranks(
        ranks, [&](net::LoopbackRank&& lr) -> int {
          net::TcpNetworkConfig config;
          config.rank = lr.rank;
          config.hosts = std::move(lr.hosts);
          config.listen = std::move(lr.listen);
          net::TcpNetwork net(g, local::IdStrategy::kSequential, 42,
                              std::move(config));
          net.run(gossip_factory(), kGossipRounds + 1);
          return 0;
        });
    if (!report.all_ok()) {
      state.SkipWithError("a loopback rank failed");
      break;
    }
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(g.num_nodes() * kGossipRounds));
}
BENCHMARK(BM_TcpLoopbackRounds)
    ->Args({64, 2})->Args({64, 4})
    ->Args({256, 2})->Args({256, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The scale-path input question: how much faster is mmap-loading a packed
// .dsg file than regenerating the instance in memory? Arg pair: torus side,
// source (0 = in-memory generation through the deterministic
// DistributedGenerator, 1 = load_dsg of a pre-packed file). The mapped load
// is O(1) — header validation plus mmap — so the gap widens linearly with
// the instance; bench-smoke records both rows. The loaded graph's CSR is
// touched once per iteration (degree sum) so the mapped rows pay their
// first page faults instead of benchmarking a lazy no-op.
void BM_MmapLoadVsGenerate(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const bool mapped = state.range(1) != 0;
  const graph::GenSpec spec = graph::GenSpec::parse(
      "torus:w=" + std::to_string(side) + ",h=" + std::to_string(side));
  const graph::DistributedGenerator dg(spec, 42);
  const std::string path = "/tmp/bench_mmap_torus.dsg";
  if (mapped) graph::write_dsg(dg.generate_full(), path, 0, dg.seed());
  for (auto _ : state) {
    const graph::Graph g = mapped ? graph::load_dsg(path) : dg.generate_full();
    std::size_t ports = 0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) ports += g.degree(v);
    benchmark::DoNotOptimize(ports);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dg.num_nodes()));
}
BENCHMARK(BM_MmapLoadVsGenerate)
    ->Args({256, 0})->Args({256, 1})
    ->Args({1024, 0})->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

// Per-submission cost of the resident serving path once the fleet is up: a
// single-rank in-process daemon (the dispatch broadcast short-circuits
// with no followers) stands for all iterations, and each op is one full
// client round trip — connect, framed request, validate, execute `mis`
// through the standing transport with a warm partition cache, respond.
// Compare against BM_TcpLoopbackRounds, which pays rendezvous + partition
// per run — the gap is what residency buys. Arg: nodes of the resident gnp
// instance.
void BM_ServeRequestRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const graph::Graph g = graph::gen::gnp(n, 0.1, rng);
  net::Socket listen = net::listen_on(net::Endpoint{"127.0.0.1", 0});
  serve::DaemonConfig config;
  config.rank = 0;
  config.hosts = {net::local_endpoint(listen.fd())};
  config.listen = std::move(listen);
  config.graph = &g;
  config.idle_poll_ms = 20;
  serve::Daemon daemon(std::move(config));
  std::thread runner([&] { daemon.run(); });
  serve::ClientConfig client;
  client.port = daemon.request_port();
  std::uint64_t id = 0;
  for (auto _ : state) {
    serve::Request req;
    req.id = ++id;
    req.algo = "mis";
    req.seed = 7;
    const serve::Response resp = serve::submit(client, req);
    if (resp.status != serve::Status::kOk) {
      state.SkipWithError("submission not served");
      break;
    }
    benchmark::DoNotOptimize(resp.output_digest);
  }
  daemon.request_shutdown();
  runner.join();
}
BENCHMARK(BM_ServeRequestRoundTrip)
    ->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ---- trajectory emission (--json=FILE) ----------------------------------

/// Console reporter that additionally retains every successful iteration
/// run so main() can emit the distsplit-bench-v1 trajectory record.
class TrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      collected_.push_back(run);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<Run>& collected() const {
    return collected_;
  }

 private:
  std::vector<Run> collected_;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

/// distsplit-bench-v1: documented in README.md (Profiling section). ns/op
/// is the accumulated time over the whole measurement divided by the
/// iteration count — the unit-independent quantity bench_compare.py diffs.
void write_bench_json(
    std::ostream& out,
    const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  out << "{\n  \"schema\": \"distsplit-bench-v1\",\n  \"provenance\": {";
  bool first = true;
  for (const auto& [key, value] : Provenance::get().context()) {
    out << (first ? "" : ", ") << "\"" << json_escape(key) << "\": \""
        << json_escape(value) << "\"";
    first = false;
  }
  out << "},\n  \"benchmarks\": [";
  first = true;
  for (const auto& run : runs) {
    const auto iters =
        run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
    out << (first ? "" : ",") << "\n    {\"name\": \""
        << json_escape(run.benchmark_name()) << "\", \"iterations\": "
        << run.iterations << ", \"real_ns_per_op\": "
        << run.real_accumulated_time * 1e9 / iters
        << ", \"cpu_ns_per_op\": " << run.cpu_accumulated_time * 1e9 / iters
        << ", \"counters\": {";
    bool first_counter = true;
    for (const auto& [name, counter] : run.counters) {
      out << (first_counter ? "" : ", ") << "\"" << json_escape(name)
          << "\": " << static_cast<double>(counter);
      first_counter = false;
    }
    out << "}}";
    first = false;
  }
  out << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --json=FILE before handing argv to google-benchmark (it rejects
  // flags it does not know).
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  TrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out.good()) {
      std::cerr << "error: cannot open --json output file: " << json_path
                << "\n";
      return 1;
    }
    write_bench_json(out, reporter.collected());
    out.flush();
    if (!out.good()) {
      std::cerr << "error: failed writing --json output file: " << json_path
                << "\n";
      return 1;
    }
    std::cout << "json: " << json_path << " (" << reporter.collected().size()
              << " benchmarks)\n";
  }
  benchmark::Shutdown();
  return 0;
}
