// E14 — Extension (Section 1.1's motivation): edge splitting and the
// 2Δ(1+o(1)) edge coloring of [GS17], reproduced on the library's Euler
// substrate. Sweeps Δ and reports the palette/Δ ratio, which must stay near
// (and below) 2 + o(1); also reports the per-node discrepancy of one edge
// split (always <= 1 on the Euler substrate vs the (1/2+ε)d contract).

#include <cstdlib>
#include <iostream>

#include "edgecolor/edge_coloring.hpp"
#include "graph/generators.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace ds;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  Rng rng(opts.seed());
  bool ok = true;

  std::cout << "E14 — extension: edge splitting => 2Δ(1+o(1)) edge coloring "
               "[GS17 pipeline]\n";
  Table table({"n", "Delta", "split max disc", "levels", "classes",
               "leaf degree", "colors", "colors/Delta"});
  for (std::size_t d : {8, 16, 32, 64, 128}) {
    const std::size_t n = std::max<std::size_t>(128, 2 * d);
    const auto g = graph::gen::random_regular(n, d, rng);

    const auto is_red = edgecolor::edge_split(g, 0.1, nullptr);
    long long worst = 0;
    {
      std::vector<long long> balance(g.num_nodes(), 0);
      for (std::size_t e = 0; e < g.num_edges(); ++e) {
        const graph::Edge& ed = g.edges()[e];
        const long long delta = is_red[e] ? 1 : -1;
        balance[ed.u] += delta;
        balance[ed.v] += delta;
      }
      for (long long x : balance) worst = std::max(worst, std::llabs(x));
    }
    ok = ok && worst <= 3;

    const auto result = edgecolor::edge_coloring_via_splitting(g, 4, nullptr);
    ok = ok && edgecolor::is_proper_edge_coloring(g, result.colors);
    const double ratio =
        static_cast<double>(result.num_colors) / static_cast<double>(d);
    ok = ok && ratio <= 3.0;
    table.row()
        .num(n)
        .num(d)
        .num(worst)
        .num(result.levels)
        .num(result.num_classes)
        .num(result.max_class_degree)
        .num(static_cast<std::size_t>(result.num_colors))
        .num(ratio, 3);
  }
  table.print(std::cout);
  std::cout << (ok ? "SHAPE CHECK: PASS" : "SHAPE CHECK: FAIL")
            << " (split discrepancy <= 3; proper colorings; palette within "
               "2Δ(1+o(1)))\n";
  return ok ? 0 : 1;
}
