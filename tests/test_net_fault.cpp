// Fault injection for the TCP runtime: SIGKILL one rank of a loopback
// fleet mid-round and assert the surviving ranks abort collectively —
// promptly, with nonzero exits, instead of hanging at an exchange that the
// dead rank will never join. (The shm runtime's equivalent is the parent's
// waitpid poll; on TCP the signal is the broken connection itself, plus the
// kAbort frames the survivors forward to each other.)

#include <gtest/gtest.h>

#include <signal.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "local/program.hpp"
#include "net/loopback.hpp"
#include "net/tcp_network.hpp"
#include "support/check.hpp"

namespace ds::net {
namespace {

// A program slow enough that the kill lands mid-run: every node sleeps a
// little in its send phase and the run would last thousands of rounds.
class SlowGossip final : public local::NodeProgram {
 public:
  explicit SlowGossip(const local::NodeEnv& env) : env_(env) {}

  void send(std::size_t, local::Outbox& out) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (std::size_t p = 0; p < env_.degree; ++p) {
      out.write(p, {env_.uid, static_cast<std::uint64_t>(p)});
    }
  }

  void receive(std::size_t round, const local::Inbox&) override {
    if (round + 1 >= 2000) done_ = true;
  }

  [[nodiscard]] bool done() const override { return done_; }

 private:
  local::NodeEnv env_;
  bool done_ = false;
};

TEST(TcpFault, KilledRankAbortsTheFleetWithoutHanging) {
  const auto g = graph::gen::cycle(6);
  const auto factory =
      [](const local::NodeEnv& env) -> std::unique_ptr<local::NodeProgram> {
    return std::make_unique<SlowGossip>(env);
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::thread killer;
  const LoopbackReport report = run_loopback_ranks(
      3,
      [&](LoopbackRank&& lr) -> int {
        TcpNetworkConfig config;
        config.rank = lr.rank;
        config.hosts = std::move(lr.hosts);
        config.listen = std::move(lr.listen);
        config.transport.handshake_timeout_ms = 20000;
        config.transport.round_timeout_ms = 30000;
        TcpNetwork net(g, local::IdStrategy::kSequential, 4,
                       std::move(config));
        try {
          net.run(factory, 10000);
          return 1;  // the run must NOT complete
        } catch (const ds::CheckError&) {
          return 5;  // collective abort observed
        }
      },
      [&](const std::vector<pid_t>& children) {
        // children[0] is rank 1; kill it once the fleet is deep in its
        // round loop (the rendezvous itself is fast on loopback).
        ASSERT_EQ(children.size(), 2u);
        const pid_t victim = children[0];
        killer = std::thread([victim] {
          std::this_thread::sleep_for(std::chrono::milliseconds(300));
          ::kill(victim, SIGKILL);
        });
      });
  if (killer.joinable()) killer.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Rank 0 (this process) saw the abort as an exception...
  EXPECT_EQ(report.rank0, 5);
  ASSERT_EQ(report.peer_exit_codes.size(), 2u);
  // ...the victim died by SIGKILL (128 + 9), and the third rank aborted on
  // its own (exit 3: the loopback harness maps an escaped CheckError to 3,
  // or 5 if its body caught it first — both prove a nonzero, prompt exit).
  EXPECT_EQ(report.peer_exit_codes[0], 128 + SIGKILL);
  EXPECT_NE(report.peer_exit_codes[1], 0);
  // "Within the timeout": the survivors must notice via the broken
  // connections (EOF/reset) immediately — far below the 30 s round budget,
  // let alone the ctest timeout.
  EXPECT_LT(elapsed, 20.0);
}

}  // namespace
}  // namespace ds::net
