// Tests for the writer-style message path: Outbox/Inbox semantics (empty
// messages, max-degree nodes, per-port varying lengths, broadcast, contract
// violations), degree-balanced shard boundaries on skewed graphs, and the
// zero-allocation guarantee of the migrated send path (asserted through a
// global operator-new counting hook — this binary must not be merged with
// other test binaries).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "dist/partition.hpp"
#include "graph/generators.hpp"
#include "local/message_arena.hpp"
#include "local/network.hpp"
#include "runtime/parallel_network.hpp"
#include "support/check.hpp"

// ---- Global allocation counter -------------------------------------------
// Counts every scalar/array non-aligned heap allocation in the binary. The
// steady-state round loop of both executors must not allocate when running
// writer-API programs, which the AllocationCounting tests assert by
// comparing the allocation counts of a short and a long run.

// GCC pairs the replaced operator new (malloc-backed) with the free() in the
// replaced operator delete and misreports a mismatch at every delete site.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ds {
namespace {

// ---- Outbox / Inbox unit tests -------------------------------------------

TEST(Outbox, WriteStreamsAndCounts) {
  local::WordBank bank;
  std::vector<local::MessageSpan> spans(4);
  const std::size_t slots[4] = {2, 0, 3, 1};  // scattered delivery slots
  local::Outbox out(&bank, 7, spans.data(), slots, 4, 42);
  EXPECT_EQ(out.degree(), 4u);

  out.write(0, {10, 11});         // whole message at once
  out.push(2, 20);                // streaming writes, port 1 stays empty
  out.push(2, 21);
  out.push(2, 22);
  out.write(3, nullptr, 0);       // explicitly empty message

  EXPECT_EQ(out.messages(), 2u);
  EXPECT_EQ(out.payload_words(), 5u);

  // Spans land in the delivery slots, tagged with the epoch.
  EXPECT_EQ(spans[2].length, 2u);   // port 0 -> slot 2
  EXPECT_EQ(spans[2].epoch, 42u);
  EXPECT_EQ(spans[2].bank, 7u);
  EXPECT_EQ(spans[0].epoch, 0u);    // port 1 never written
  EXPECT_EQ(spans[3].length, 3u);   // port 2 -> slot 3
  EXPECT_EQ(spans[1].length, 0u);   // port 3 written but empty
  EXPECT_EQ(spans[1].epoch, 42u);
  EXPECT_EQ(bank, (local::WordBank{10, 11, 20, 21, 22}));
}

TEST(Outbox, BroadcastStoresPayloadOnce) {
  local::WordBank bank;
  std::vector<local::MessageSpan> spans(3);
  const std::size_t slots[3] = {0, 1, 2};
  local::Outbox out(&bank, 0, spans.data(), slots, 3, 5);
  out.broadcast({1, 2, 3});
  EXPECT_EQ(bank.size(), 3u);  // payload deduplicated across ports
  EXPECT_EQ(out.messages(), 3u);        // but accounted per delivery
  EXPECT_EQ(out.payload_words(), 9u);
  for (const local::MessageSpan& s : spans) {
    EXPECT_EQ(s.offset, 0u);
    EXPECT_EQ(s.length, 3u);
    EXPECT_EQ(s.epoch, 5u);
  }
}

TEST(Outbox, ContractViolationsThrow) {
  local::WordBank bank;
  std::vector<local::MessageSpan> spans(3);
  const std::size_t slots[3] = {0, 1, 2};
  {
    local::Outbox out(&bank, 0, spans.data(), slots, 3, 1);
    EXPECT_THROW(out.write(3, {1}), ds::CheckError);  // port out of range
  }
  {
    local::Outbox out(&bank, 0, spans.data(), slots, 3, 1);
    out.write(1, {1});
    EXPECT_THROW(out.write(0, {2}), ds::CheckError);  // decreasing order
    EXPECT_THROW(out.write(1, {2}), ds::CheckError);  // double write
    EXPECT_THROW(out.push(1, 2), ds::CheckError);  // extend finalized message
  }
  {
    local::Outbox out(&bank, 0, spans.data(), slots, 3, 1);
    out.write(0, {1});
    EXPECT_THROW(out.broadcast({2}), ds::CheckError);  // broadcast after write
  }
  {
    local::Outbox out(&bank, 0, spans.data(), slots, 3, 1);
    out.broadcast({2});
    EXPECT_THROW(out.write(2, {1}), ds::CheckError);  // write after broadcast
  }
}

TEST(Inbox, EpochTagFiltersStaleSpans) {
  local::WordBank bank = {7, 8, 9};
  std::vector<local::MessageSpan> spans(2);
  spans[0] = {0, /*epoch=*/4, 2, 0};  // fresh
  spans[1] = {2, /*epoch=*/3, 1, 0};  // stale (previous round)
  const std::uint64_t* bases[1] = {bank.data()};
  local::Inbox inbox(spans.data(), 2, bases, 4);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[0].size(), 2u);
  EXPECT_EQ(inbox[0][0], 7u);
  EXPECT_EQ(inbox[0][1], 8u);
  EXPECT_TRUE(inbox[1].empty());  // stale span reads as "nothing arrived"
}

// ---- End-to-end writer semantics on an executor --------------------------

/// Writes a self-describing message of varying length per port: the header
/// carries (sender uid, declared extra words k), followed by k pattern
/// words; port p is skipped entirely when (uid + p) % 5 == 0. The receiver
/// validates structure and provenance of every message — on a star graph
/// this covers a max-degree hub writing all ports in one round.
class VaryingLengthProgram final : public local::NodeProgram {
 public:
  explicit VaryingLengthProgram(const local::NodeEnv& env) : env_(env) {}

  void send(std::size_t /*round*/, local::Outbox& out) override {
    for (std::size_t p = 0; p < env_.degree; ++p) {
      if ((env_.uid + p) % 5 == 0) continue;  // empty message on this port
      const std::uint64_t extra = (env_.uid + p) % 4;
      out.push(p, env_.uid);
      out.push(p, extra);
      for (std::uint64_t i = 0; i < extra; ++i) {
        out.push(p, env_.uid ^ (i + 1));
      }
    }
  }

  void receive(std::size_t /*round*/, const local::Inbox& inbox) override {
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      const local::MessageView msg = inbox[p];
      const std::uint64_t sender = env_.neighbor_uids[p];
      // The sender skipped *its* port toward us iff (sender_uid + q) % 5 == 0
      // for its port q — we cannot compute q locally, so accept empty, but a
      // non-empty message must be structurally valid and from the right
      // neighbor.
      if (msg.empty()) {
        ++empties_;
        continue;
      }
      ASSERT_GE(msg.size(), 2u);
      EXPECT_EQ(msg[0], sender);
      const std::uint64_t extra = msg[1];
      ASSERT_EQ(msg.size(), 2 + extra);
      for (std::uint64_t i = 0; i < extra; ++i) {
        EXPECT_EQ(msg[2 + i], sender ^ (i + 1));
      }
      ++validated_;
    }
    done_ = true;
  }

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] std::size_t validated() const { return validated_; }
  [[nodiscard]] std::size_t empties() const { return empties_; }

 private:
  local::NodeEnv env_;
  std::size_t validated_ = 0;
  std::size_t empties_ = 0;
  bool done_ = false;
};

void expect_varying_lengths_deliver(local::Executor& exec) {
  exec.run(
      [](const local::NodeEnv& env) {
        return std::make_unique<VaryingLengthProgram>(env);
      },
      4);
  std::size_t validated = 0;
  std::size_t empties = 0;
  std::size_t expected_nonempty = 0;
  const graph::Graph& g = exec.graph();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& p =
        static_cast<const VaryingLengthProgram&>(exec.program(v));
    validated += p.validated();
    empties += p.empties();
    for (std::size_t q = 0; q < g.degree(v); ++q) {
      if ((exec.uids()[v] + q) % 5 != 0) ++expected_nonempty;
    }
  }
  EXPECT_EQ(validated, expected_nonempty);
  EXPECT_EQ(validated + empties, 2 * g.num_edges());
}

TEST(WriterApi, VaryingLengthsOnStarMaxDegreeHub) {
  // Star: the hub writes num_nodes - 1 ports of different lengths in one
  // send; every leaf has degree 1.
  graph::Graph g(64);
  for (graph::NodeId v = 1; v < 64; ++v) g.add_edge(0, v);
  for (std::size_t threads : {1, 2, 8}) {
    runtime::ParallelNetwork par(g, local::IdStrategy::kRandomPermutation, 3,
                                 threads);
    expect_varying_lengths_deliver(par);
  }
  local::Network seq(g, local::IdStrategy::kRandomPermutation, 3);
  expect_varying_lengths_deliver(seq);
}

TEST(WriterApi, VaryingLengthsOnGnp) {
  Rng rng(21);
  const auto g = graph::gen::gnp(300, 0.02, rng);
  local::Network seq(g, local::IdStrategy::kSequential, 11);
  expect_varying_lengths_deliver(seq);
  runtime::ParallelNetwork par(g, local::IdStrategy::kSequential, 11, 4);
  expect_varying_lengths_deliver(par);
}

// ---- Degree-balanced shard boundaries ------------------------------------

TEST(DegreeBalancedShards, SplitsByPortCountNotNodeCount) {
  // One hub owning 100 of 104 ports: with 2 shards the boundary must land
  // right after the hub instead of at the node midpoint.
  const std::vector<std::size_t> offsets = {0, 100, 101, 102, 103, 104};
  const auto bounds = dist::degree_balanced_boundaries(offsets, 2);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], 1u);  // hub alone in shard 0
  EXPECT_EQ(bounds[2], 5u);
}

TEST(DegreeBalancedShards, NoEdgesFallsBackToNodeBalance) {
  const std::vector<std::size_t> offsets(9, 0);  // 8 isolated nodes
  const auto bounds = dist::degree_balanced_boundaries(offsets, 4);
  const std::vector<graph::NodeId> expected = {0, 2, 4, 6, 8};
  EXPECT_EQ(bounds, expected);
}

TEST(DegreeBalancedShards, CoverSkewedGraphsExactlyOnce) {
  // Regression: on skewed (Barabási–Albert) degree distributions the
  // boundaries must stay monotone and cover every node exactly once, and no
  // shard may exceed its fair port share by more than one node's degree
  // (the boundary granularity).
  Rng rng(77);
  const auto g = graph::gen::barabasi_albert(5000, 4, rng);
  const local::NetworkTopology topo(g, local::IdStrategy::kSequential, 1);
  const auto& offsets = topo.port_offsets();
  const std::size_t max_deg = g.max_degree();
  for (std::size_t shards : {1, 2, 3, 7, 16, 64}) {
    const auto bounds = dist::degree_balanced_boundaries(offsets, shards);
    ASSERT_EQ(bounds.size(), shards + 1);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), g.num_nodes());
    for (std::size_t s = 0; s < shards; ++s) {
      ASSERT_LE(bounds[s], bounds[s + 1]);  // monotone => exactly-once cover
      const std::size_t ports = offsets[bounds[s + 1]] - offsets[bounds[s]];
      EXPECT_LE(ports, topo.total_ports() / shards + max_deg)
          << "shard " << s << "/" << shards << " overloaded";
    }
  }
}

TEST(DegreeBalancedShards, ParallelNetworkUsesThem) {
  Rng rng(78);
  const auto g = graph::gen::barabasi_albert(2000, 3, rng);
  runtime::ParallelNetwork net(g, local::IdStrategy::kSequential, 1, 4);
  const auto& bounds = net.shard_boundaries();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), g.num_nodes());
  EXPECT_EQ(bounds, dist::degree_balanced_boundaries(
                        net.topology().port_offsets(), bounds.size() - 1));
}

// ---- Zero-allocation send path -------------------------------------------

/// Minimal writer-API gossip with a configurable round budget; its
/// steady-state rounds touch no heap.
class FixedRoundGossip final : public local::NodeProgram {
 public:
  FixedRoundGossip(const local::NodeEnv& env, std::size_t rounds)
      : env_(env), rounds_(rounds), acc_(env.uid) {}

  void send(std::size_t, local::Outbox& out) override {
    out.broadcast({acc_});
  }

  void receive(std::size_t round, const local::Inbox& inbox) override {
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      const local::MessageView msg = inbox[p];
      if (!msg.empty()) acc_ ^= msg[0] * 0x9E3779B97F4A7C15ull;
    }
    done_ = round + 1 >= rounds_;
  }

  [[nodiscard]] bool done() const override { return done_; }

 private:
  local::NodeEnv env_;
  std::size_t rounds_;
  std::uint64_t acc_;
  bool done_ = false;
};

local::ProgramFactory fixed_round_factory(std::size_t rounds) {
  return [rounds](const local::NodeEnv& env) {
    return std::make_unique<FixedRoundGossip>(env, rounds);
  };
}

/// Allocations of one run() with the given round budget.
std::size_t allocations_of_run(local::Executor& exec, std::size_t rounds) {
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  exec.run(fixed_round_factory(rounds), rounds + 1);
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(AllocationCounting, SequentialSendPathIsZeroAllocPerRound) {
  const auto g = graph::gen::torus(24, 24);
  local::Network net(g, local::IdStrategy::kSequential, 9);
  net.run(fixed_round_factory(48), 49);  // warm the arena to its high-water
  const std::size_t short_run = allocations_of_run(net, 8);
  const std::size_t long_run = allocations_of_run(net, 48);
  // Per-run allocations (program construction) are identical; 40 extra
  // rounds must add exactly nothing.
  EXPECT_EQ(long_run, short_run);
}

TEST(AllocationCounting, ParallelSendPathIsZeroAllocPerRound) {
  const auto g = graph::gen::torus(24, 24);
  for (std::size_t threads : {1, 2}) {
    runtime::ParallelNetwork net(g, local::IdStrategy::kSequential, 9,
                                 threads);
    net.run(fixed_round_factory(48), 49);
    const std::size_t short_run = allocations_of_run(net, 8);
    const std::size_t long_run = allocations_of_run(net, 48);
    EXPECT_EQ(long_run, short_run) << "threads=" << threads;
  }
}

TEST(AllocationCounting, LegacyAdapterDoesAllocate) {
  // Sanity check that the counting hook actually observes the message path:
  // the legacy vector API allocates per round, so a longer run must count
  // strictly more.
  class VectorGossip final : public local::NodeProgram {
   public:
    VectorGossip(const local::NodeEnv& env, std::size_t rounds)
        : degree_(env.degree), rounds_(rounds) {}
    std::vector<local::Message> send_messages(std::size_t) override {
      return std::vector<local::Message>(degree_, local::Message{1});
    }
    void receive_messages(std::size_t round,
                          const std::vector<local::Message>&) override {
      done_ = round + 1 >= rounds_;
    }
    [[nodiscard]] bool done() const override { return done_; }

   private:
    std::size_t degree_;
    std::size_t rounds_;
    bool done_ = false;
  };
  const auto g = graph::gen::torus(8, 8);
  local::Network net(g, local::IdStrategy::kSequential, 9);
  auto factory = [](std::size_t rounds) {
    return [rounds](const local::NodeEnv& env) {
      return std::make_unique<VectorGossip>(env, rounds);
    };
  };
  net.run(factory(16), 17);
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  net.run(factory(4), 5);
  const std::size_t short_run =
      g_allocations.load(std::memory_order_relaxed) - before;
  const std::size_t mid = g_allocations.load(std::memory_order_relaxed);
  net.run(factory(16), 17);
  const std::size_t long_run =
      g_allocations.load(std::memory_order_relaxed) - mid;
  EXPECT_GT(long_run, short_run);
}

}  // namespace
}  // namespace ds
