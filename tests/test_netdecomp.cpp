// Tests for network decompositions (Linial–Saks, ball carving) and the
// derandomization sweeps built on them.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "coloring/reduce.hpp"
#include "coloring/verify.hpp"
#include "graph/generators.hpp"
#include "netdecomp/decomposition.hpp"
#include "netdecomp/decomposition_program.hpp"
#include "netdecomp/derandomize.hpp"
#include "support/rng.hpp"

namespace ds::netdecomp {
namespace {

Decomposition trivial_singletons(const graph::Graph& g) {
  // Every node its own cluster, blocks = a proper coloring by node id parity
  // fails in general; use one block per cluster (valid, c = n).
  Decomposition d;
  d.cluster.resize(g.num_nodes());
  d.block.resize(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    d.cluster[v] = v;
    d.block[v] = v;
  }
  d.num_clusters = g.num_nodes();
  d.num_blocks = g.num_nodes();
  return d;
}

TEST(Verifier, AcceptsSingletonDecomposition) {
  Rng rng(1);
  const auto g = graph::gen::gnp(20, 0.2, rng);
  const auto d = trivial_singletons(g);
  EXPECT_TRUE(is_network_decomposition(g, d, 0, g.num_nodes()));
}

TEST(Verifier, RejectsAdjacentSameBlockClusters) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  Decomposition d;
  d.cluster = {0, 1};
  d.block = {0, 0};  // adjacent clusters, same block
  d.num_clusters = 2;
  d.num_blocks = 1;
  EXPECT_FALSE(is_network_decomposition(g, d, 1, 1));
  d.block = {0, 1};
  d.num_blocks = 2;
  EXPECT_TRUE(is_network_decomposition(g, d, 1, 2));
}

TEST(Verifier, RejectsOversizedDiameter) {
  graph::Graph g(4);  // path of length 3 in one cluster
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Decomposition d;
  d.cluster = {0, 0, 0, 0};
  d.block = {0};
  d.num_clusters = 1;
  d.num_blocks = 1;
  EXPECT_FALSE(is_network_decomposition(g, d, 2, 1));
  EXPECT_TRUE(is_network_decomposition(g, d, 3, 1));
}

class DecompositionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(DecompositionSweep, LinialSaksShapesAreLogarithmic) {
  const auto [n, p] = GetParam();
  Rng rng(n);
  const auto g = graph::gen::gnp(n, p, rng);
  local::CostMeter meter;
  const auto d = linial_saks(g, 13, &meter);
  const auto log_budget =
      4 * static_cast<std::size_t>(std::ceil(std::log2(n + 1))) + 8;
  EXPECT_LE(d.num_blocks, 4 * log_budget);
  EXPECT_LE(d.max_weak_diameter, 4 * log_budget);
  EXPECT_GT(meter.charged_rounds(), 0.0);
}

TEST_P(DecompositionSweep, BallCarvingBlocksAtMostLogN) {
  const auto [n, p] = GetParam();
  Rng rng(n + 1);
  const auto g = graph::gen::gnp(n, p, rng);
  const auto d = ball_carving(g);
  EXPECT_LE(d.num_blocks,
            static_cast<std::size_t>(std::ceil(std::log2(n + 1))) + 1);
}

INSTANTIATE_TEST_SUITE_P(Gnp, DecompositionSweep,
                         ::testing::Values(std::make_tuple(40, 0.1),
                                           std::make_tuple(100, 0.05),
                                           std::make_tuple(200, 0.02),
                                           std::make_tuple(300, 0.01)));

TEST(BallCarving, ClustersAreConnectedInducedSubgraphs) {
  Rng rng(3);
  const auto g = graph::gen::random_regular(150, 4, rng);
  const auto d = ball_carving(g);
  // Check connectivity of each cluster in its induced subgraph by
  // union-find over intra-cluster edges.
  std::vector<graph::NodeId> parent(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) parent[v] = v;
  std::function<graph::NodeId(graph::NodeId)> find =
      [&](graph::NodeId v) -> graph::NodeId {
    return parent[v] == v ? v : parent[v] = find(parent[v]);
  };
  for (const graph::Edge& e : g.edges()) {
    if (d.cluster[e.u] == d.cluster[e.v]) parent[find(e.u)] = find(e.v);
  }
  std::vector<graph::NodeId> root(d.num_clusters, UINT32_MAX);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& r = root[d.cluster[v]];
    if (r == UINT32_MAX) {
      r = find(v);
    } else {
      EXPECT_EQ(r, find(v)) << "cluster " << d.cluster[v] << " disconnected";
    }
  }
}

TEST(LinialSaks, CoversDisconnectedGraphs) {
  graph::Graph g(10);  // two components: a 5-cycle and an edge + isolated
  for (graph::NodeId v = 0; v < 5; ++v) g.add_edge(v, (v + 1) % 5);
  g.add_edge(5, 6);
  const auto d = linial_saks(g, 21);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LT(d.cluster[v], d.num_clusters);
  }
}

TEST(Derandomize, MisMatchesVerifierOnBothDecompositions) {
  Rng rng(6);
  const auto g = graph::gen::gnp(120, 0.06, rng);
  for (const auto& d : {linial_saks(g, 3), ball_carving(g)}) {
    local::CostMeter meter;
    const auto in_mis = mis_via_decomposition(g, d, &meter);
    EXPECT_TRUE(coloring::is_mis(g, in_mis));
    EXPECT_GT(meter.charged_rounds(), 0.0);
  }
}

TEST(Derandomize, ColoringUsesAtMostDeltaPlusOneColors) {
  Rng rng(7);
  const auto g = graph::gen::random_regular(100, 6, rng);
  const auto d = ball_carving(g);
  std::uint32_t palette = 0;
  const auto colors = coloring_via_decomposition(g, d, &palette);
  EXPECT_TRUE(coloring::is_proper_coloring(g, colors));
  EXPECT_LE(palette, 7u);
}

TEST(Derandomize, DeterministicAcrossRepeats) {
  Rng rng(8);
  const auto g = graph::gen::gnp(80, 0.08, rng);
  const auto d = ball_carving(g);
  EXPECT_EQ(mis_via_decomposition(g, d), mis_via_decomposition(g, d));
  EXPECT_EQ(coloring_via_decomposition(g, d),
            coloring_via_decomposition(g, d));
}

TEST(Derandomize, ChargedCostIsBlocksTimesDiameter) {
  Rng rng(9);
  const auto g = graph::gen::gnp(60, 0.1, rng);
  const auto d = ball_carving(g);
  local::CostMeter meter;
  mis_via_decomposition(g, d, &meter);
  EXPECT_DOUBLE_EQ(meter.charged_rounds(),
                   static_cast<double>(d.num_blocks) *
                       static_cast<double>(d.max_weak_diameter + 2));
}

// ---- Message-passing Linial–Saks program (registry port) -----------------

TEST(Program, DecomposesAssortedInstances) {
  Rng rng(10);
  for (const graph::Graph& g :
       {graph::gen::gnp(80, 0.08, rng), graph::gen::torus(8, 7),
        graph::gen::barabasi_albert(70, 3, rng)}) {
    const auto outcome = decomposition_program(g, 5);
    const Decomposition& d = outcome.decomposition;
    EXPECT_TRUE(is_network_decomposition(g, d, 4 * outcome.radius_cap,
                                         d.num_blocks));
    // The block budget of the sequential construction holds here too.
    EXPECT_LE(d.num_blocks, 4 * outcome.radius_cap + 8);
    EXPECT_EQ(outcome.executed_rounds % outcome.radius_cap, 0u);
  }
}

TEST(Program, HonorsExplicitRadiusCap) {
  Rng rng(11);
  const auto g = graph::gen::gnp(50, 0.12, rng);
  const auto outcome = decomposition_program(g, 3, /*radius_cap=*/5);
  EXPECT_EQ(outcome.radius_cap, 5u);
  EXPECT_TRUE(is_network_decomposition(g, outcome.decomposition, 20,
                                       outcome.decomposition.num_blocks));
}

TEST(Program, DegenerateInstances) {
  const auto empty = decomposition_program(graph::Graph(0), 1);
  EXPECT_EQ(empty.decomposition.num_clusters, 0u);
  EXPECT_EQ(empty.executed_rounds, 0u);
  // Isolated nodes: every node eventually clusters alone.
  const auto isolated = decomposition_program(graph::Graph(4), 1);
  EXPECT_EQ(isolated.decomposition.num_clusters, 4u);
  EXPECT_EQ(isolated.decomposition.max_weak_diameter, 0u);
}

TEST(Program, DeterministicAcrossRepeats) {
  Rng rng(12);
  const auto g = graph::gen::gnp(60, 0.1, rng);
  const auto a = decomposition_program(g, 7);
  const auto b = decomposition_program(g, 7);
  EXPECT_EQ(a.decomposition.cluster, b.decomposition.cluster);
  EXPECT_EQ(a.decomposition.block, b.decomposition.block);
  EXPECT_EQ(a.executed_rounds, b.executed_rounds);
  // A different seed explores different radii (overwhelmingly likely).
  const auto c = decomposition_program(g, 8);
  EXPECT_NE(a.decomposition.cluster, c.decomposition.cluster);
}

}  // namespace
}  // namespace ds::netdecomp
