// Tests for the TCP runtime: the determinism contract — for a fixed
// (graph, IdStrategy, seed), a loopback `net::TcpNetwork` fleet must
// produce bit-identical per-node outputs, round counts and RoundStats to
// the sequential Network at 2 and 4 ranks — plus the Luby / trial coloring
// / sinkless algorithm plumbing through the ExecutorFactory, degenerate
// instances (ranks > nodes, isolated nodes, empty graph), the rendezvous
// digest handshake, and collective aborts. Mirrors tests/test_dist.cpp so
// the shm and the TCP runtime suites cannot drift apart.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "algo/registry.hpp"
#include "coloring/randcolor.hpp"
#include "determinism_probe.hpp"
#include "graph/generators.hpp"
#include "graph/insitu.hpp"
#include "local/network.hpp"
#include "local/round_stats.hpp"
#include "mis/mis.hpp"
#include "net/insitu_runner.hpp"
#include "net/loopback.hpp"
#include "net/tcp_network.hpp"
#include "orient/sinkless.hpp"
#include "runtime/select.hpp"
#include "support/check.hpp"

namespace ds::net {
namespace {

using probes::probe_factory;

// Tests must fail fast, not sit out the production rendezvous/round
// budgets, when a protocol bug wedges a fleet.
TcpOptions test_options() {
  TcpOptions opts;
  opts.handshake_timeout_ms = 20000;
  opts.round_timeout_ms = 30000;
  return opts;
}

local::OutputFn probe_output_fn() {
  return [](graph::NodeId, const local::NodeProgram& p,
            std::vector<std::uint64_t>& out) {
    out.push_back(static_cast<const probes::ProbeBase&>(p).digest());
  };
}

std::vector<std::uint64_t> probe_digests(local::Executor& exec,
                                         std::size_t* rounds = nullptr) {
  exec.set_output_fn(probe_output_fn());
  const std::size_t r = exec.run(probe_factory(), 100);
  if (rounds != nullptr) *rounds = r;
  std::vector<std::uint64_t> digests(exec.graph().num_nodes());
  for (graph::NodeId v = 0; v < digests.size(); ++v) {
    digests[v] = exec.outputs().value(v);
  }
  return digests;
}

TcpNetworkConfig rank_config(LoopbackRank&& lr) {
  TcpNetworkConfig config;
  config.rank = lr.rank;
  config.hosts = std::move(lr.hosts);
  config.listen = std::move(lr.listen);
  config.transport = test_options();
  return config;
}

void expect_bit_identical(const graph::Graph& g, local::IdStrategy strategy,
                          std::uint64_t seed,
                          std::initializer_list<std::size_t> rank_counts = {
                              2, 4}) {
  local::Network sequential(g, strategy, seed);
  std::size_t seq_rounds = 0;
  const auto expected = probe_digests(sequential, &seq_rounds);
  for (const std::size_t ranks : rank_counts) {
    std::vector<std::uint64_t> got;
    std::size_t got_rounds = 0;
    const LoopbackReport report = run_loopback_ranks(
        ranks, [&](LoopbackRank&& lr) -> int {
          const std::size_t rank = lr.rank;
          TcpNetwork net(g, strategy, seed, rank_config(std::move(lr)));
          // Exit-code check, not EXPECT: on child ranks a gtest failure
          // would die silently with the forked process.
          if (net.uids() != sequential.uids()) return 6;
          std::size_t r = 0;
          const auto digests = probe_digests(net, &r);
          if (rank == 0) {
            got = digests;
            got_rounds = r;
            return 0;
          }
          // Child ranks verify the re-broadcast output table themselves:
          // the gathered results must be the full, sequential-identical
          // table on every rank, not just on rank 0.
          return (digests == expected && r == seq_rounds) ? 0 : 7;
        });
    EXPECT_TRUE(report.all_ok()) << "ranks=" << ranks;
    EXPECT_EQ(got_rounds, seq_rounds) << "ranks=" << ranks;
    EXPECT_EQ(got, expected) << "ranks=" << ranks;
  }
}

// ---- Determinism suite ---------------------------------------------------

TEST(TcpDeterminism, Gnp) {
  Rng rng(7);
  const auto g = graph::gen::gnp(300, 0.03, rng);
  expect_bit_identical(g, local::IdStrategy::kRandomPermutation, 11);
}

TEST(TcpDeterminism, Torus) {
  const auto g = graph::gen::torus(20, 20);
  expect_bit_identical(g, local::IdStrategy::kSequential, 3);
}

TEST(TcpDeterminism, RandomBiregular) {
  Rng rng(5);
  const auto b = graph::gen::random_biregular(120, 240, 6, rng);
  expect_bit_identical(b.unified(), local::IdStrategy::kDegreeDescending, 9);
}

TEST(TcpDeterminism, BarabasiAlbertSkew) {
  // Preferential attachment: hub nodes concentrate cut edges on one rank —
  // the worst case for the per-pair frame sizes.
  Rng rng(13);
  const auto g = graph::gen::barabasi_albert(1200, 4, rng);
  expect_bit_identical(g, local::IdStrategy::kRandomPermutation, 17);
}

// The probe's traffic shape with fat (64-word) per-port messages — the
// pattern that trips the shm transport's fixed reservation.
class ChattyProbe final : public probes::ProbeBase {
 public:
  using ProbeBase::ProbeBase;
  void send(std::size_t, local::Outbox& out) override {
    for (std::size_t p = 0; p < env_.degree; ++p) {
      const std::vector<std::uint64_t> payload(64, env_.uid ^ p);
      out.write(p, payload.data(), payload.size());
    }
  }
  void receive(std::size_t round, const local::Inbox& inbox) override {
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      for (std::uint64_t w : inbox[p]) absorb(p, w);
    }
    finish_round(round);
  }
};

TEST(TcpDeterminism, ChattyMessagesNeedNoReservation) {
  // The shm transport reserves halo capacity up front and aborts on
  // overflow; TCP frames size themselves per round. The traffic pattern of
  // the shm overflow regression must simply *work* here — and still match
  // the sequential executor bit for bit.
  const auto g = graph::gen::complete(16);
  const local::ProgramFactory chatty =
      [](const local::NodeEnv& env) -> std::unique_ptr<local::NodeProgram> {
    return std::make_unique<ChattyProbe>(env);
  };
  local::Network sequential(g, local::IdStrategy::kSequential, 5);
  sequential.set_output_fn(probe_output_fn());
  const std::size_t seq_rounds = sequential.run(chatty, 100);
  std::vector<std::uint64_t> expected(g.num_nodes());
  for (graph::NodeId v = 0; v < expected.size(); ++v) {
    expected[v] = sequential.outputs().value(v);
  }
  const LoopbackReport report = run_loopback_ranks(
      2, [&](LoopbackRank&& lr) -> int {
        TcpNetwork net(g, local::IdStrategy::kSequential, 5,
                       rank_config(std::move(lr)));
        net.set_output_fn(probe_output_fn());
        if (net.run(chatty, 100) != seq_rounds) return 13;
        for (graph::NodeId v = 0; v < expected.size(); ++v) {
          if (net.outputs().value(v) != expected[v]) return 14;
        }
        return 0;
      });
  EXPECT_TRUE(report.all_ok()) << "rank0=" << report.rank0;
}

// Algorithm-level equality through the ExecutorFactory plumbing: Luby MIS,
// trial coloring and the sinkless-orientation program, at 2 and 4 ranks.
TEST(TcpDeterminism, LubyTrialColoringSinkless) {
  Rng rng(2);
  const auto g = graph::gen::random_regular(384, 8, rng);
  const auto seq_mis = mis::luby(g, 77);
  const auto seq_col = coloring::randomized_coloring(g, 78);
  const auto seq_orient = orient::sinkless_program(g, 79, 3);
  for (const std::size_t ranks : {2, 4}) {
    const LoopbackReport report = run_loopback_ranks(
        ranks, [&](LoopbackRank&& lr) -> int {
          // Each algorithm invocation constructs a fresh TcpNetwork (the
          // factory contract); the first reuses the pre-bound socket, the
          // later ones rebind the now-known port.
          Socket* first = &lr.listen;
          const local::ExecutorFactory executor =
              [&](const graph::Graph& fg, local::IdStrategy strategy,
                  std::uint64_t seed) -> std::unique_ptr<local::Executor> {
            TcpNetworkConfig config;
            config.rank = lr.rank;
            config.hosts = lr.hosts;
            config.listen = std::move(*first);
            config.transport = test_options();
            return std::make_unique<TcpNetwork>(fg, strategy, seed,
                                                std::move(config));
          };

          const auto mis_out =
              mis::luby(g, 77, nullptr, 10000, local::IdStrategy::kSequential,
                        executor);
          if (mis_out.in_mis != seq_mis.in_mis ||
              mis_out.executed_rounds != seq_mis.executed_rounds) {
            return 10;
          }
          const auto col_out = coloring::randomized_coloring(
              g, 78, nullptr, 10000, local::IdStrategy::kSequential,
              executor);
          if (col_out.colors != seq_col.colors ||
              col_out.num_colors != seq_col.num_colors ||
              col_out.executed_rounds != seq_col.executed_rounds) {
            return 11;
          }
          const auto orient_out =
              orient::sinkless_program(g, 79, 3, nullptr, 30, executor);
          if (orient_out.toward_v != seq_orient.toward_v ||
              orient_out.executed_rounds != seq_orient.executed_rounds ||
              orient_out.trials != seq_orient.trials) {
            return 12;
          }
          return 0;
        });
    EXPECT_TRUE(report.all_ok())
        << "ranks=" << ranks << " rank0=" << report.rank0;
  }
}

TEST(TcpRoundStats, MatchesSequentialExecutor) {
  Rng rng(31);
  const auto g = graph::gen::gnp(200, 0.03, rng);
  local::Network seq(g, local::IdStrategy::kSequential, 8);
  std::vector<local::RoundStats> seq_stats;
  seq.set_stats_sink(
      [&](const local::RoundStats& s) { seq_stats.push_back(s); });
  const std::size_t seq_rounds = seq.run(probe_factory(), 100);
  ASSERT_EQ(seq_stats.size(), seq_rounds);

  const LoopbackReport report = run_loopback_ranks(
      3, [&](LoopbackRank&& lr) -> int {
        // The TCP transport aggregates totals on every rank (they ride in
        // the halo frames), so every rank's sink must see the same trace.
        TcpNetwork net(g, local::IdStrategy::kSequential, 8,
                       rank_config(std::move(lr)));
        std::vector<local::RoundStats> stats;
        net.set_stats_sink(
            [&](const local::RoundStats& s) { stats.push_back(s); });
        const std::size_t rounds = net.run(probe_factory(), 100);
        if (rounds != seq_rounds || stats.size() != seq_stats.size()) {
          return 20;
        }
        for (std::size_t r = 0; r < stats.size(); ++r) {
          if (stats[r].round != r ||
              stats[r].live_nodes != seq_stats[r].live_nodes ||
              stats[r].messages != seq_stats[r].messages ||
              stats[r].payload_words != seq_stats[r].payload_words ||
              stats[r].wall_seconds < 0.0) {
            return 21;
          }
        }
        return 0;
      });
  EXPECT_TRUE(report.all_ok()) << "rank0=" << report.rank0;
}

// ---- Executor behavior ---------------------------------------------------

TEST(TcpNetwork, CostMeterAndReuse) {
  const auto g = graph::gen::torus(8, 8);
  local::Network sequential(g, local::IdStrategy::kSequential, 4);
  const auto expected = probe_digests(sequential);
  const LoopbackReport report = run_loopback_ranks(
      2, [&](LoopbackRank&& lr) -> int {
        TcpNetwork net(g, local::IdStrategy::kSequential, 4,
                       rank_config(std::move(lr)));
        local::CostMeter meter;
        net.set_output_fn(probe_output_fn());
        const std::size_t r1 = net.run(probe_factory(), 100, &meter);
        if (meter.executed_rounds() != r1) return 30;
        // Re-running the same executor reuses the standing connections; the
        // result must stay bit-identical.
        const auto first = probe_digests(net);
        const auto second = probe_digests(net);
        return (first == expected && second == expected) ? 0 : 31;
      });
  EXPECT_TRUE(report.all_ok()) << "rank0=" << report.rank0;
}

TEST(TcpNetwork, ProgramAccessorIsRankLocal) {
  const auto g = graph::gen::torus(8, 8);
  const LoopbackReport report = run_loopback_ranks(
      2, [&](LoopbackRank&& lr) -> int {
        const std::size_t rank = lr.rank;
        TcpNetwork net(g, local::IdStrategy::kSequential, 4,
                       rank_config(std::move(lr)));
        net.run(probe_factory(), 100);
        const graph::NodeId mine = net.partition().first_node(rank);
        const graph::NodeId theirs = net.partition().first_node(1 - rank);
        try {
          (void)net.program(mine);
        } catch (const ds::CheckError&) {
          return 40;  // own range must be resident
        }
        try {
          (void)net.program(theirs);
          return 41;  // the peer's range must not be
        } catch (const ds::CheckError&) {
          return 0;
        }
      });
  EXPECT_TRUE(report.all_ok()) << "rank0=" << report.rank0;
}

TEST(TcpNetwork, DegenerateInstances) {
  // More ranks than nodes: a rank process cannot be clamped away like a
  // fork worker, so empty ranges must simply work.
  const auto small = graph::gen::cycle(3);
  expect_bit_identical(small, local::IdStrategy::kSequential, 2, {2, 4});

  // Isolated nodes only (no edges, nothing to exchange).
  const graph::Graph isolated(5);
  expect_bit_identical(isolated, local::IdStrategy::kSequential, 6, {2});

  // Empty graph: zero rounds, empty output table, on every rank.
  const graph::Graph empty(0);
  const LoopbackReport report = run_loopback_ranks(
      2, [&](LoopbackRank&& lr) -> int {
        TcpNetwork net(empty, local::IdStrategy::kSequential, 1,
                       rank_config(std::move(lr)));
        net.set_output_fn(probe_output_fn());
        if (net.run(probe_factory(), 10) != 0) return 50;
        return net.outputs().size() == 0 ? 0 : 51;
      });
  EXPECT_TRUE(report.all_ok()) << "rank0=" << report.rank0;
}

TEST(TcpNetwork, SingleRankFleetRunsWithoutPeers) {
  const auto g = graph::gen::torus(6, 6);
  local::Network sequential(g, local::IdStrategy::kSequential, 9);
  std::size_t seq_rounds = 0;
  const auto expected = probe_digests(sequential, &seq_rounds);
  const LoopbackReport report = run_loopback_ranks(
      1, [&](LoopbackRank&& lr) -> int {
        TcpNetwork net(g, local::IdStrategy::kSequential, 9,
                       rank_config(std::move(lr)));
        std::size_t r = 0;
        return (probe_digests(net, &r) == expected && r == seq_rounds) ? 0
                                                                       : 60;
      });
  EXPECT_TRUE(report.all_ok()) << "rank0=" << report.rank0;
}

TEST(TcpNetwork, MaxRoundsAbortsTheWholeFleet) {
  const auto g = graph::gen::cycle(16);
  const LoopbackReport report = run_loopback_ranks(
      2, [&](LoopbackRank&& lr) -> int {
        TcpNetwork net(g, local::IdStrategy::kSequential, 1,
                       rank_config(std::move(lr)));
        try {
          net.run(probe_factory(), 2);
          return 70;  // must throw on every rank
        } catch (const ds::CheckError& e) {
          return std::string(e.what()).find("max_rounds") !=
                         std::string::npos
                     ? 71
                     : 72;
        }
      });
  EXPECT_EQ(report.rank0, 71);
  ASSERT_EQ(report.peer_exit_codes.size(), 1u);
  EXPECT_EQ(report.peer_exit_codes[0], 71);
}

TEST(TcpRendezvous, RejectsMismatchedLaunches) {
  // Rank 1 disagrees about the seed -> different UIDs -> different topology
  // digest. Both sides must fail fast with the digest diagnosis instead of
  // running to divergent results.
  const auto g = graph::gen::torus(6, 6);
  const LoopbackReport report = run_loopback_ranks(
      2, [&](LoopbackRank&& lr) -> int {
        const std::uint64_t seed = lr.rank == 0 ? 5 : 6;
        try {
          TcpNetwork net(g, local::IdStrategy::kSequential, seed,
                         rank_config(std::move(lr)));
          return 80;  // the handshake must refuse
        } catch (const ds::CheckError& e) {
          return std::string(e.what()).find("digest mismatch") !=
                         std::string::npos
                     ? 81
                     : 82;
        }
      });
  EXPECT_EQ(report.rank0, 81);
  ASSERT_EQ(report.peer_exit_codes.size(), 1u);
  EXPECT_EQ(report.peer_exit_codes[0], 81);
}

TEST(TcpRuntime, SelectParsesTcpFlags) {
  const char* argv[] = {"x",        "--runtime=tcp", "--rank=1",
                        "--ranks=4", "--hosts=h.txt", "--sndbuf=65536",
                        "--rcvbuf=131072"};
  const auto config = runtime::runtime_from_options(Options(7, argv));
  EXPECT_EQ(config.kind, runtime::RuntimeKind::kTcp);
  EXPECT_EQ(config.rank, 1u);
  EXPECT_EQ(config.ranks, 4u);
  EXPECT_EQ(config.hosts, "h.txt");
  EXPECT_EQ(config.sndbuf, 65536u);
  EXPECT_EQ(config.rcvbuf, 131072u);
  EXPECT_NE(runtime::runtime_description(config).find("tcp"),
            std::string::npos);
}

TEST(TcpNetwork, PartitionStatsExposed) {
  // The partition layer is shared with the other executors; just pin that
  // a TcpNetwork exposes it per launch size (no fleet needed: rank count 1
  // keeps this test socket-free except for the unused listener).
  const auto g = graph::gen::torus(16, 16);
  const LoopbackReport report = run_loopback_ranks(
      1, [&](LoopbackRank&& lr) -> int {
        TcpNetwork net(g, local::IdStrategy::kSequential, 9,
                       rank_config(std::move(lr)));
        const dist::PartitionStats& stats = net.partition().stats();
        return (stats.parts == 1 && stats.cut_edges == 0 &&
                stats.internal_edges == g.num_edges())
                   ? 0
                   : 90;
      });
  EXPECT_TRUE(report.all_ok()) << "rank0=" << report.rank0;
}

// ---- In-situ scale path --------------------------------------------------

TEST(InsituRunner, MatchesSequentialDigestAcrossFamilies) {
  // The in-situ runner (rank-local generation, no materialized topology
  // anywhere) must reproduce the sequential reference bit-for-bit: same
  // fleet digest, same output sum, same round count, on every rank. One
  // row family, one self-discovering family, one with local duplicates.
  for (const std::string text :
       {"torus:w=12,h=12", "gnm:n=120,deg=5", "ba:n=120,d=3"}) {
    const graph::GenSpec gen = graph::GenSpec::parse(text);
    const std::uint64_t seed = 19;
    const graph::DistributedGenerator dg(gen, seed);
    const mis::MisOutcome expected = mis::luby(dg.generate_full(), seed);
    std::uint64_t digest = 1469598103934665603ull;
    std::uint64_t sum = 0;
    for (const bool joined : expected.in_mis) {
      const std::uint64_t w = joined ? 1 : 0;
      for (int byte = 0; byte < 8; ++byte) {
        digest ^= (w >> (8 * byte)) & 0xFFull;
        digest *= 1099511628211ull;
      }
      sum += w;
    }
    const algo::Spec& spec = algo::find("mis");
    const algo::Params params = algo::Params::parse(spec.params, {});
    for (const std::size_t ranks : {1, 3}) {
      const LoopbackReport report =
          run_loopback_ranks(ranks, [&](LoopbackRank&& lr) -> int {
            InsituConfig config;
            config.rank = lr.rank;
            config.hosts = std::move(lr.hosts);
            config.listen = std::move(lr.listen);
            config.transport = test_options();
            const InsituResult result =
                run_insitu(spec, params, seed, gen, std::move(config));
            if (!result.verified) return 41;
            if (result.output_digest != digest) return 42;
            if (result.output_sum != sum) return 43;
            if (result.rounds != expected.executed_rounds) return 44;
            return 0;
          });
      EXPECT_TRUE(report.all_ok())
          << text << " ranks=" << ranks << " rank0=" << report.rank0;
    }
  }
}

TEST(InsituRunner, RejectsSpecsWithoutHooks) {
  algo::Spec bare;
  bare.name = "bare";
  bare.input = algo::InputKind::kGeneralGraph;
  EXPECT_THROW(run_insitu(bare, algo::Params::parse({}, {}), 1,
                          graph::GenSpec::parse("torus:w=4,h=4"),
                          InsituConfig{}),
               ds::CheckError);
}

}  // namespace
}  // namespace ds::net
