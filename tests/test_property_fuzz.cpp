// Cross-cutting property sweeps: every instance family x every applicable
// solver, always judged by the independent verifiers. These are the
// "random user input" tests — they assert no internal invariant beyond
// what the public API promises.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "coloring/randcolor.hpp"
#include "coloring/verify.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mis/mis.hpp"
#include "coloring/reduce.hpp"
#include "netdecomp/decomposition.hpp"
#include "netdecomp/derandomize.hpp"
#include "splitting/solver.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/rng.hpp"

namespace ds {
namespace {

struct NamedGraph {
  std::string name;
  graph::Graph g;
};

std::vector<NamedGraph> graph_zoo(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NamedGraph> zoo;
  zoo.push_back({"gnp-sparse", graph::gen::gnp(120, 0.03, rng)});
  zoo.push_back({"gnp-dense", graph::gen::gnp(60, 0.4, rng)});
  zoo.push_back({"regular-8", graph::gen::random_regular(96, 8, rng)});
  zoo.push_back({"regular-dense", graph::gen::random_regular(40, 31, rng)});
  zoo.push_back({"cycle", graph::gen::cycle(50)});
  zoo.push_back({"torus", graph::gen::torus(8, 9)});
  zoo.push_back({"tree", graph::gen::random_tree(80, rng)});
  zoo.push_back({"hypercube", graph::gen::hypercube(6)});
  zoo.push_back({"power-law", graph::gen::chung_lu_power_law(150, 2.5, 5, rng)});
  zoo.push_back({"complete", graph::gen::complete(20)});
  zoo.push_back({"edgeless", graph::Graph(25)});
  return zoo;
}

class GraphZoo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphZoo, LubyIsAlwaysAnMis) {
  for (const auto& [name, g] : graph_zoo(GetParam())) {
    const auto outcome = mis::luby(g, GetParam() + 1);
    EXPECT_TRUE(coloring::is_mis(g, outcome.in_mis)) << name;
  }
}

TEST_P(GraphZoo, TrialColoringIsAlwaysProperWithinDeltaPlusOne) {
  for (const auto& [name, g] : graph_zoo(GetParam() + 100)) {
    const auto outcome = coloring::randomized_coloring(g, GetParam() + 2);
    EXPECT_TRUE(coloring::is_proper_coloring(g, outcome.colors)) << name;
    EXPECT_LE(outcome.num_colors, g.max_degree() + 1) << name;
  }
}

TEST_P(GraphZoo, BallCarvingAlwaysDecomposes) {
  for (const auto& [name, g] : graph_zoo(GetParam() + 200)) {
    const auto d = netdecomp::ball_carving(g);
    EXPECT_TRUE(netdecomp::is_network_decomposition(
        g, d, 4 * d.max_weak_diameter + 1, d.num_blocks))
        << name;
    const auto in_mis = netdecomp::mis_via_decomposition(g, d);
    EXPECT_TRUE(coloring::is_mis(g, in_mis)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphZoo, ::testing::Values(1, 2, 3));

struct NamedBipartite {
  std::string name;
  graph::BipartiteGraph b;
};

std::vector<NamedBipartite> bipartite_zoo(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NamedBipartite> zoo;
  zoo.push_back(
      {"biregular-32", graph::gen::random_biregular(64, 128, 32, rng)});
  zoo.push_back(
      {"left-regular-12", graph::gen::random_left_regular(60, 200, 12, rng)});
  zoo.push_back({"incidence-regular",
                 graph::gen::incidence_bipartite(
                     graph::gen::random_regular(80, 14, rng))});
  zoo.push_back({"incidence-high-girth",
                 graph::gen::incidence_bipartite(
                     graph::gen::high_girth_regular(700, 8, 5, rng))});
  zoo.push_back({"bipartite-cycle", graph::gen::bipartite_cycle(24)});
  zoo.push_back(
      {"dense-biregular", graph::gen::random_biregular(24, 64, 48, rng)});
  return zoo;
}

class BipartiteZoo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BipartiteZoo, SolverFacadeAlwaysVerifiesBothModes) {
  for (const auto& [name, b] : bipartite_zoo(GetParam() * 31)) {
    for (bool deterministic : {true, false}) {
      Rng rng(GetParam());
      splitting::SolverOptions options;
      options.deterministic = deterministic;
      const auto result = splitting::solve_weak_splitting(b, options, rng);
      EXPECT_TRUE(splitting::is_weak_splitting(b, result.colors))
          << name << (deterministic ? " det" : " rand");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BipartiteZoo, ::testing::Values(1, 2, 3));

TEST(FailureInjection, VerifiersRejectCorruptedOutputs) {
  Rng rng(7);
  const auto b = graph::gen::random_biregular(32, 64, 16, rng);
  splitting::SolverOptions options;
  auto result = splitting::solve_weak_splitting(b, options, rng);
  ASSERT_TRUE(splitting::is_weak_splitting(b, result.colors));
  // Paint everything red: every constraint loses its blue witness.
  for (auto& c : result.colors) c = splitting::Color::kRed;
  EXPECT_FALSE(splitting::is_weak_splitting(b, result.colors));
}

TEST(FailureInjection, MisVerifierRejectsDominationGaps) {
  Rng rng(8);
  const auto g = graph::gen::random_regular(60, 5, rng);
  auto outcome = mis::luby(g, 9);
  ASSERT_TRUE(coloring::is_mis(g, outcome.in_mis));
  // Remove one MIS node: either independence still holds but some node is
  // now undominated, or (isolated case) nothing changes — find a node whose
  // removal breaks maximality.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (outcome.in_mis[v]) {
      outcome.in_mis[v] = false;
      break;
    }
  }
  EXPECT_FALSE(coloring::is_mis(g, outcome.in_mis));
}

TEST(FailureInjection, DecompositionVerifierRejectsBlockMerges) {
  Rng rng(9);
  const auto g = graph::gen::random_regular(80, 6, rng);
  auto d = netdecomp::ball_carving(g);
  ASSERT_GE(d.num_blocks, 2u);
  // Force all clusters into block 0: adjacent clusters now share a block.
  for (auto& blk : d.block) blk = 0;
  d.num_blocks = 1;
  EXPECT_FALSE(netdecomp::is_network_decomposition(
      g, d, 4 * d.max_weak_diameter + 1, 1));
}

}  // namespace
}  // namespace ds
