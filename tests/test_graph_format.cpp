// Tests for the binary mmap-able .dsg graph format (graph/format.hpp):
// pack/mmap round-trip fuzz (bit-identical CSR to the in-memory graph),
// header validation (magic, version, endianness, size, payload digest) with
// loud FormatError rejection, the bipartite split recovery, and the key
// scale-path property — a mapped topology shared read-only across forked
// multi-process workers produces bit-identical outputs.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dist/distributed_network.hpp"
#include "graph/format.hpp"
#include "graph/generators.hpp"
#include "graph/insitu.hpp"
#include "local/network.hpp"
#include "mis/mis.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::graph {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Asserts the mapped graph is CSR-bit-identical to the owned one.
void expect_same_graph(const Graph& owned, const Graph& mapped) {
  ASSERT_EQ(owned.num_nodes(), mapped.num_nodes());
  ASSERT_EQ(owned.num_edges(), mapped.num_edges());
  for (NodeId v = 0; v < owned.num_nodes(); ++v) {
    ASSERT_EQ(owned.degree(v), mapped.degree(v)) << "v=" << v;
    const auto a = owned.neighbors(v);
    const auto b = mapped.neighbors(v);
    for (std::size_t p = 0; p < owned.degree(v); ++p) {
      ASSERT_EQ(a[p], b[p]) << "v=" << v << " p=" << p;
    }
  }
  const auto ea = owned.edges();
  const auto eb = mapped.edges();
  for (std::size_t i = 0; i < owned.num_edges(); ++i) {
    ASSERT_EQ(ea[i].u, eb[i].u) << "edge " << i;
    ASSERT_EQ(ea[i].v, eb[i].v) << "edge " << i;
  }
}

TEST(GraphFormat, RoundTripFuzz) {
  Rng rng(17);
  const std::string path = temp_path("roundtrip.dsg");
  for (int i = 0; i < 6; ++i) {
    const std::size_t n = 1 + rng.next_index(300);
    const Graph g = graph::gen::gnp(n, 0.05, rng);
    write_dsg(g, path, /*nu=*/0, /*seed=*/42);
    DsgHeader header;
    const Graph m = load_dsg(path, &header, /*verify_digest=*/true);
    EXPECT_TRUE(m.is_mapped());
    EXPECT_EQ(header.version, kDsgVersion);
    EXPECT_EQ(header.n, g.num_nodes());
    EXPECT_EQ(header.m, g.num_edges());
    EXPECT_EQ(header.seed, 42u);
    expect_same_graph(g, m);
  }
  // The canonical generator output (sorted rows) round-trips too.
  const DistributedGenerator dg(GenSpec::parse("ba:n=200,d=3"), 9);
  const Graph g = dg.generate_full();
  write_dsg(g, path, 0, dg.seed());
  expect_same_graph(g, load_dsg(path, nullptr, true));
}

TEST(GraphFormat, EmptyAndEdgelessGraphs) {
  const std::string path = temp_path("empty.dsg");
  for (const std::size_t n : {std::size_t{0}, std::size_t{5}}) {
    const Graph g(n);
    write_dsg(g, path);
    const Graph m = load_dsg(path, nullptr, true);
    EXPECT_EQ(m.num_nodes(), n);
    EXPECT_EQ(m.num_edges(), 0u);
  }
}

/// Writes a tweaked copy of `path` with byte `offset` xor'd by `mask`.
std::string corrupt(const std::string& path, std::size_t offset,
                    char mask) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  bytes.at(offset) ^= mask;
  const std::string out_path = temp_path("corrupt.dsg");
  std::ofstream out(out_path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out_path;
}

TEST(GraphFormat, RejectsCorruptHeaders) {
  const std::string path = temp_path("victim.dsg");
  Rng rng(3);
  write_dsg(graph::gen::gnp(50, 0.1, rng), path);

  // Bad magic (byte 0), bad version (byte 4), bad endian tag (byte 6):
  // every one must die loudly in load_dsg regardless of digest checking.
  EXPECT_THROW(load_dsg(corrupt(path, 0, 0x01)), FormatError);
  EXPECT_THROW(load_dsg(corrupt(path, 4, 0x40)), FormatError);
  EXPECT_THROW(load_dsg(corrupt(path, 6, 0x01)), FormatError);
  // Node/edge counts inflated past the actual file size.
  EXPECT_THROW(load_dsg(corrupt(path, 8, 0x10)), FormatError);

  // A payload flip passes the O(1) structural checks only when digest
  // verification is off; verify_digest=true must catch it. Flip a high
  // byte of one adjacency word far from the offsets table.
  std::ifstream in(path, std::ios::binary);
  in.seekg(0, std::ios::end);
  const std::size_t size = static_cast<std::size_t>(in.tellg());
  const std::string flipped = corrupt(path, size - 1, 0x04);
  EXPECT_THROW(load_dsg(flipped, nullptr, /*verify_digest=*/true),
               FormatError);

  // Truncation and trailing garbage: the expected size is exact.
  {
    std::ifstream full(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(full)),
                            std::istreambuf_iterator<char>());
    const std::string trunc = temp_path("trunc.dsg");
    std::ofstream out(trunc, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 8));
    out.close();
    EXPECT_THROW(load_dsg(trunc), FormatError);
    const std::string bloat = temp_path("bloat.dsg");
    std::ofstream out2(bloat, std::ios::binary);
    out2.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out2.put(0);
    out2.close();
    EXPECT_THROW(load_dsg(bloat), FormatError);
  }

  // Missing file.
  EXPECT_THROW(load_dsg(temp_path("does-not-exist.dsg")), FormatError);
  // The pristine file still loads — the corrupt copies never touched it.
  EXPECT_NO_THROW(load_dsg(path, nullptr, true));
}

TEST(GraphFormat, BipartiteSplitRecovery) {
  Rng rng(23);
  const auto b = graph::gen::random_biregular(40, 20, 4, rng);
  const std::string path = temp_path("bipartite.dsg");
  write_dsg(b.unified(), path, b.num_left());
  DsgHeader header;
  const Graph m = load_dsg(path, &header, true);
  ASSERT_EQ(header.nu, b.num_left());
  const BipartiteGraph back =
      bipartite_from_unified(m, static_cast<std::size_t>(header.nu));
  EXPECT_EQ(back.num_left(), b.num_left());
  EXPECT_EQ(back.num_right(), b.num_right());
  EXPECT_EQ(back.num_edges(), b.num_edges());
  // An edge that does not cross the claimed divide must be rejected.
  Graph bad(4);
  bad.add_edge(0, 1);
  EXPECT_THROW(bipartite_from_unified(bad, 2), FormatError);
}

TEST(GraphFormat, MappedTopologySharedByForkedWorkers) {
  // The scale-path property: a mapped .dsg consumed by the forked
  // multi-process executor (workers share the read-only pages) produces
  // outputs bit-identical to the sequential executor on the owned graph.
  const DistributedGenerator dg(GenSpec::parse("torus:w=16,h=16"), 5);
  const Graph owned = dg.generate_full();
  const std::string path = temp_path("mp.dsg");
  write_dsg(owned, path, 0, dg.seed());
  const Graph mapped = load_dsg(path, nullptr, true);
  ASSERT_TRUE(mapped.is_mapped());

  const mis::MisOutcome seq = mis::luby(owned, 5);
  dist::DistributedConfig config;
  config.workers = 4;
  mis::MisOutcome mp = mis::luby(
      mapped, 5, nullptr, 10000, local::IdStrategy::kSequential,
      [&](const Graph& fg, local::IdStrategy strategy, std::uint64_t seed) {
        return std::make_unique<dist::DistributedNetwork>(fg, strategy, seed,
                                                          config);
      });
  EXPECT_EQ(seq.in_mis, mp.in_mis);
  EXPECT_EQ(seq.executed_rounds, mp.executed_rounds);
}

}  // namespace
}  // namespace ds::graph
