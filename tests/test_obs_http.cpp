// Tests for the live-introspection stack (PR 8): Prometheus exposition
// conformance (in-test parser: TYPE lines, family uniqueness, counter
// monotonicity between scrapes), the embedded HTTP server's endpoints and
// error paths, /healthz flipping to 503 after a collective abort in a
// loopback TCP fleet, /status served concurrently with a live 4-rank run,
// the flight-recorder ring's eviction + dropped-counter semantics, and
// absence of torn reads from the seqlock SnapshotPublisher under a
// hammering reader thread (the TSan job runs this file too).

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "determinism_probe.hpp"
#include "graph/generators.hpp"
#include "net/loopback.hpp"
#include "net/socket.hpp"
#include "net/tcp_network.hpp"
#include "obs/exposition.hpp"
#include "obs/http_server.hpp"
#include "obs/publish.hpp"
#include "obs/recorder.hpp"
#include "support/check.hpp"

namespace ds::obs {
namespace {

using probes::probe_factory;

// ---- Minimal HTTP/1.1 client ---------------------------------------------

struct HttpResponse {
  int status = 0;
  std::string headers;
  std::string body;
};

HttpResponse http_request(std::uint16_t port, const std::string& method,
                          const std::string& path) {
  net::Socket s = net::connect_to(net::Endpoint{"127.0.0.1", port}, 2000);
  net::set_io_timeouts(s.fd(), 2000);
  const std::string req = method + " " + path +
                          " HTTP/1.1\r\nHost: test\r\nConnection: close"
                          "\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(s.fd(), req.data() + sent, req.size() - sent, 0);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      break;
    }
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(s.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      raw.append(buf, static_cast<std::size_t>(n));
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      break;  // EOF: Connection: close
    }
  }
  HttpResponse r;
  const std::size_t sp = raw.find(' ');
  if (sp != std::string::npos) r.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) {
    r.headers = raw.substr(0, split);
    r.body = raw.substr(split + 4);
  }
  return r;
}

HttpResponse http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET", path);
}

// ---- Prometheus text exposition 0.0.4 conformance parser -----------------

struct Exposition {
  std::map<std::string, std::string> families;  ///< family -> declared type
  std::map<std::string, double> samples;        ///< name{labels} -> value
  std::vector<std::string> errors;
};

/// Parses and validates one scrape: every `# TYPE` family unique, every
/// sample attributable to a declared family (summary families own their
/// `_sum` / `_count` series), every value numeric.
Exposition parse_exposition(const std::string& text) {
  Exposition e;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family;
      std::string type;
      fields >> family >> type;
      if (family.empty() ||
          (type != "counter" && type != "gauge" && type != "summary")) {
        e.errors.push_back("malformed TYPE line: " + line);
      } else if (!e.families.emplace(family, type).second) {
        e.errors.push_back("duplicate family: " + family);
      }
      continue;
    }
    if (line[0] == '#') continue;  // HELP or comment
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) {
      e.errors.push_back("malformed sample line: " + line);
      continue;
    }
    const std::string key = line.substr(0, sp);
    const std::string name = key.substr(0, key.find('{'));
    try {
      e.samples[key] = std::stod(line.substr(sp + 1));
    } catch (...) {
      e.errors.push_back("non-numeric value: " + line);
      continue;
    }
    // Attribute the sample to a family.
    std::string family = name;
    if (e.families.count(family) == 0) {
      for (const char* suffix : {"_sum", "_count"}) {
        const std::string s = suffix;
        if (name.size() > s.size() &&
            name.compare(name.size() - s.size(), s.size(), s) == 0) {
          const std::string base = name.substr(0, name.size() - s.size());
          const auto it = e.families.find(base);
          if (it != e.families.end() && it->second == "summary") family = base;
        }
      }
    }
    if (e.families.count(family) == 0) {
      e.errors.push_back("sample without TYPE: " + name);
    }
  }
  return e;
}

// ---- Exposition conformance ----------------------------------------------

TEST(Exposition, ConformsAndCountersAreMonotoneBetweenScrapes) {
  Recorder rec;
  Metrics& m = rec.metrics();
  Counter messages = m.counter("rounds.messages");
  Counter tx0 = m.counter("tcp.tx.frames", /*slots=*/4, /*slot=*/0);
  Counter tx2 = m.counter("tcp.tx.frames", /*slots=*/4, /*slot=*/2);
  Gauge rounds_g = m.gauge("rounds.executed");
  Histogram round_us = m.histogram("phase.round.us");
  // A negative clock offset must render as a signed sample, not 2^64-250.
  m.gauge("clock.offset.rank1.us")
      .set(static_cast<std::uint64_t>(std::int64_t{-250}));

  SnapshotPublisher pub;
  rec.set_publisher(&pub);
  messages.add(7);
  tx0.add(3);
  tx2.add(5);
  rounds_g.set(3);
  round_us.record(120);
  rec.publish_round(3);

  std::ostringstream first;
  write_prometheus(first, pub);
  const Exposition e1 = parse_exposition(first.str());
  EXPECT_TRUE(e1.errors.empty()) << e1.errors.front();
  EXPECT_EQ(e1.families.at("distsplit_rounds_total"), "counter");
  EXPECT_EQ(e1.samples.at("distsplit_rounds_total"), 3.0);
  EXPECT_EQ(e1.families.at("distsplit_rounds_messages_total"), "counter");
  EXPECT_EQ(e1.samples.at("distsplit_rounds_messages_total"), 7.0);
  // Multi-slot counters keep one labeled series per slot.
  EXPECT_EQ(e1.samples.at("distsplit_tcp_tx_frames_total{slot=\"2\"}"), 5.0);
  EXPECT_EQ(e1.samples.at("distsplit_tcp_tx_frames_total{slot=\"1\"}"), 0.0);
  // Histograms expose summary sum/count plus min/max gauge families.
  EXPECT_EQ(e1.families.at("distsplit_phase_round_us"), "summary");
  EXPECT_EQ(e1.samples.at("distsplit_phase_round_us_sum"), 120.0);
  EXPECT_EQ(e1.samples.at("distsplit_phase_round_us_count"), 1.0);
  EXPECT_EQ(e1.samples.at("distsplit_phase_round_us_max"), 120.0);
  EXPECT_EQ(e1.samples.at("distsplit_clock_offset_rank1_us"), -250.0);

  messages.add(4);
  round_us.record(80);
  rec.publish_round(5);
  std::ostringstream second;
  write_prometheus(second, pub);
  const Exposition e2 = parse_exposition(second.str());
  EXPECT_TRUE(e2.errors.empty()) << e2.errors.front();
  // Counter monotonicity: no counter sample may move backwards.
  for (const auto& [key, value] : e1.samples) {
    const std::string name = key.substr(0, key.find('{'));
    const auto fam = e2.families.find(name);
    if (fam == e2.families.end() || fam->second != "counter") continue;
    ASSERT_TRUE(e2.samples.count(key)) << key;
    EXPECT_GE(e2.samples.at(key), value) << key;
  }
  EXPECT_EQ(e2.samples.at("distsplit_rounds_total"), 5.0);
  EXPECT_EQ(e2.samples.at("distsplit_rounds_messages_total"), 11.0);
}

TEST(Exposition, DerivesPerPhaseIpcAndCacheMissFamilies) {
  Recorder rec;
  Metrics& m = rec.metrics();
  m.counter("perf.send.cycles").add(1000);
  m.counter("perf.send.instructions").add(2500);
  m.counter("perf.send.cache_refs").add(200);
  m.counter("perf.send.cache_misses").add(50);
  // A phase with no cache traffic must not synthesize a 0/0 rate sample.
  m.counter("perf.barrier.cycles").add(10);
  m.counter("perf.barrier.instructions").add(5);
  SnapshotPublisher pub;
  rec.set_publisher(&pub);
  rec.publish_round(1);

  std::ostringstream out;
  write_prometheus(out, pub);
  const Exposition e = parse_exposition(out.str());
  EXPECT_TRUE(e.errors.empty()) << e.errors.front();
  EXPECT_EQ(e.families.at("distsplit_phase_ipc"), "gauge");
  EXPECT_EQ(e.samples.at("distsplit_phase_ipc{phase=\"send\"}"), 2.5);
  EXPECT_EQ(e.samples.at("distsplit_phase_ipc{phase=\"barrier\"}"), 0.5);
  EXPECT_EQ(e.families.at("distsplit_phase_cache_miss_rate"), "gauge");
  EXPECT_EQ(e.samples.at("distsplit_phase_cache_miss_rate{phase=\"send\"}"),
            0.25);
  EXPECT_EQ(e.samples.count("distsplit_phase_cache_miss_rate{phase="
                            "\"barrier\"}"),
            0u);
}

TEST(Exposition, FallbackRunSynthesizesNoHardwareFamilies) {
  Recorder rec;
  Metrics& m = rec.metrics();
  // What a degraded run registers: the availability gauge and the software
  // fallback, no cycles/instructions names at all.
  m.gauge("perf.hardware").set(0);
  m.counter("perf.send.task_clock_ns").add(123456);
  SnapshotPublisher pub;
  rec.set_publisher(&pub);
  rec.publish_round(1);

  std::ostringstream out;
  write_prometheus(out, pub);
  const Exposition e = parse_exposition(out.str());
  EXPECT_TRUE(e.errors.empty()) << e.errors.front();
  EXPECT_EQ(e.samples.at("distsplit_perf_hardware"), 0.0);
  EXPECT_EQ(e.families.count("distsplit_phase_ipc"), 0u);
  EXPECT_EQ(e.families.count("distsplit_phase_cache_miss_rate"), 0u);
}

// ---- HTTP server endpoints -----------------------------------------------

TEST(HttpServer, ServesAllEndpointsOnAnEphemeralPort) {
  Recorder rec;
  Counter c = rec.metrics().counter("rounds.messages");
  SnapshotPublisher pub;
  pub.set_info({{"algo", "test"}, {"runtime", "unit <&> test"}});
  rec.set_publisher(&pub);
  c.add(1);
  rec.publish_round(1);

  HttpServer server(pub, /*port=*/0);
  ASSERT_NE(server.port(), 0);  // kernel-assigned, read back

  const HttpResponse metrics = http_get(server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.find("version=0.0.4"), std::string::npos);
  const Exposition e = parse_exposition(metrics.body);
  EXPECT_TRUE(e.errors.empty()) << e.errors.front();
  EXPECT_EQ(e.samples.at("distsplit_rounds_total"), 1.0);

  const HttpResponse status = http_get(server.port(), "/status");
  EXPECT_EQ(status.status, 200);
  EXPECT_NE(status.headers.find("text/html"), std::string::npos);
  EXPECT_NE(status.body.find("rounds completed"), std::string::npos);
  // The run-context values are HTML-escaped.
  EXPECT_NE(status.body.find("unit &lt;&amp;&gt; test"), std::string::npos);

  const HttpResponse health = http_get(server.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "idle\n");

  const HttpResponse snapshot = http_get(server.port(), "/api/v1/snapshot");
  EXPECT_EQ(snapshot.status, 200);
  EXPECT_NE(snapshot.headers.find("application/json"), std::string::npos);
  EXPECT_NE(snapshot.body.find("\"context\""), std::string::npos);
  EXPECT_NE(snapshot.body.find("\"rounds.messages\": 1"), std::string::npos);

  EXPECT_EQ(http_get(server.port(), "/nope").status, 404);
  EXPECT_EQ(http_request(server.port(), "POST", "/metrics").status, 405);
  EXPECT_GE(server.requests_served(), 6u);
}

TEST(HttpServer, ProfileEndpointServesFoldedStacksWhenAttached) {
  SnapshotPublisher pub;
  HttpServer server(pub, /*port=*/0);

  // Without a profile source the endpoint 404s with a hint, not an empty
  // 200 a scraper would mistake for "no samples yet".
  const HttpResponse off = http_get(server.port(), "/api/v1/profile");
  EXPECT_EQ(off.status, 404);
  EXPECT_NE(off.body.find("--profile"), std::string::npos);

  pub.set_profile_source([] { return std::string("rank:0;main;work 3\n"); });
  const HttpResponse on = http_get(server.port(), "/api/v1/profile");
  EXPECT_EQ(on.status, 200);
  EXPECT_NE(on.headers.find("text/plain"), std::string::npos);
  EXPECT_EQ(on.body, "rank:0;main;work 3\n");
}

TEST(HttpServer, HealthTracksPublisherLifecycle) {
  SnapshotPublisher pub;
  HttpServer server(pub, 0);
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
  pub.run_started("probe");
  EXPECT_EQ(http_get(server.port(), "/healthz").body, "running\n");
  pub.run_finished(/*ok=*/false);
  const HttpResponse aborted = http_get(server.port(), "/healthz");
  EXPECT_EQ(aborted.status, 503);
  EXPECT_EQ(aborted.body, "aborted\n");
}

TEST(HttpServer, HealthzReports503WhileDraining) {
  // A draining daemon still answers, but load balancers must stop routing
  // new submissions to it — same signal as aborted, different body.
  SnapshotPublisher pub;
  HttpServer server(pub, 0);
  pub.set_health(Health::kDraining);
  const HttpResponse draining = http_get(server.port(), "/healthz");
  EXPECT_EQ(draining.status, 503);
  EXPECT_EQ(draining.body, "draining\n");
}

TEST(HttpServer, RunsEndpointExposesServedRunHistory) {
  constexpr auto npos = std::string::npos;
  SnapshotPublisher pub;
  HttpServer server(pub, 0);

  // Before any run: a valid JSON document with an empty history.
  const HttpResponse empty = http_get(server.port(), "/api/v1/runs");
  EXPECT_EQ(empty.status, 200);
  EXPECT_NE(empty.headers.find("application/json"), npos);
  EXPECT_NE(empty.body.find("\"health\": \"idle\""), npos) << empty.body;
  EXPECT_NE(empty.body.find("\"runs\": []"), npos) << empty.body;

  // Two finished runs — one serve-style (digests attached), one plain.
  pub.run_started("mis seed=7", /*params_digest=*/0x00ff00ff00ff00ffull);
  pub.run_finished(/*ok=*/true, /*output_digest=*/0xabcdef0123456789ull);
  pub.run_started("color seed=3");
  pub.run_finished(/*ok=*/false);

  const HttpResponse runs = http_get(server.port(), "/api/v1/runs");
  EXPECT_EQ(runs.status, 200);
  const std::string& body = runs.body;
  // Monotone ids, oldest-first, with the serve provenance fields.
  EXPECT_NE(body.find("\"id\": 1"), npos) << body;
  EXPECT_NE(body.find("\"spec\": \"mis seed=7\""), npos) << body;
  EXPECT_NE(body.find("\"params_digest\": \"00ff00ff00ff00ff\""), npos)
      << body;
  EXPECT_NE(body.find("\"output_digest\": \"abcdef0123456789\""), npos)
      << body;
  EXPECT_NE(body.find("\"ok\": true"), npos) << body;
  EXPECT_NE(body.find("\"id\": 2"), npos) << body;
  EXPECT_NE(body.find("\"spec\": \"color seed=3\""), npos) << body;
  EXPECT_NE(body.find("\"ok\": false"), npos) << body;
  // Zero digests render as empty strings, not "0000...".
  EXPECT_NE(body.find("\"params_digest\": \"\""), npos) << body;
  EXPECT_LT(body.find("\"id\": 1"), body.find("\"id\": 2"));

  // The discoverability hint mentions the endpoint.
  EXPECT_NE(http_get(server.port(), "/nope").body.find("/api/v1/runs"), npos);
}

// ---- Loopback fleets -----------------------------------------------------

net::TcpOptions test_options() {
  net::TcpOptions opts;
  opts.handshake_timeout_ms = 20000;
  opts.round_timeout_ms = 30000;
  return opts;
}

net::TcpNetworkConfig rank_config(net::LoopbackRank&& lr) {
  net::TcpNetworkConfig config;
  config.rank = lr.rank;
  config.hosts = std::move(lr.hosts);
  config.listen = std::move(lr.listen);
  config.transport = test_options();
  return config;
}

TEST(HttpServer, HealthzFlipsTo503AfterCollectiveAbort) {
  const auto g = graph::gen::cycle(16);
  // Exit-code checks, not EXPECT: a gtest failure on a forked child rank
  // would die silently with the process.
  const net::LoopbackReport report = net::run_loopback_ranks(
      2, [&](net::LoopbackRank&& lr) -> int {
        const std::size_t rank = lr.rank;
        if (rank != 0) {
          net::TcpNetwork net(g, local::IdStrategy::kSequential, 1,
                              rank_config(std::move(lr)));
          try {
            net.run(probe_factory(), 2);
            return 70;  // max_rounds must abort the fleet
          } catch (const CheckError&) {
            return 0;
          }
        }
        Recorder rec;
        SnapshotPublisher pub;
        rec.set_publisher(&pub);
        HttpServer server(pub, 0);
        pub.run_started("probe");
        net::TcpNetwork net(g, local::IdStrategy::kSequential, 1,
                            rank_config(std::move(lr)));
        net.set_recorder(&rec);
        if (http_get(server.port(), "/healthz").status != 200) return 71;
        try {
          net.run(probe_factory(), 2);
          return 72;  // max_rounds must abort the fleet
        } catch (const CheckError&) {
          // The transport's abort() flipped the publisher before the
          // exception unwound to us — no run_finished call needed.
          const HttpResponse health = http_get(server.port(), "/healthz");
          if (health.status != 503) return 73;
          if (health.body != "aborted\n") return 74;
          return 0;
        }
      });
  EXPECT_TRUE(report.all_ok()) << "rank0=" << report.rank0;
}

TEST(HttpServer, StatusServedConcurrentlyWithLiveFourRankRun) {
  Rng rng(3);
  const auto g = graph::gen::gnp(120, 0.06, rng);
  const net::LoopbackReport report = net::run_loopback_ranks(
      4, [&](net::LoopbackRank&& lr) -> int {
        const std::size_t rank = lr.rank;
        if (rank != 0) {
          Recorder rec;
          net::TcpNetwork net(g, local::IdStrategy::kSequential, 7,
                              rank_config(std::move(lr)));
          net.set_recorder(&rec);
          net.run(probe_factory(), 100);
          return 0;
        }
        Recorder rec;
        SnapshotPublisher pub;
        rec.set_publisher(&pub);
        HttpServer server(pub, 0);
        pub.run_started("probe");

        // Hammer the endpoints from a second thread for the whole run —
        // the server must serve consistent pages while the round loop
        // publishes at every round boundary.
        std::atomic<bool> stop{false};
        std::atomic<int> bad{0};
        std::atomic<int> served{0};
        std::thread hammer([&] {
          while (!stop.load(std::memory_order_acquire)) {
            for (const char* path : {"/status", "/metrics"}) {
              const HttpResponse r = http_get(server.port(), path);
              if (r.status != 200) bad.fetch_add(1);
              served.fetch_add(1);
            }
          }
        });

        net::TcpNetwork net(g, local::IdStrategy::kSequential, 7,
                            rank_config(std::move(lr)));
        net.set_recorder(&rec);
        net.run(probe_factory(), 100);
        pub.run_finished(/*ok=*/true);
        stop.store(true, std::memory_order_release);
        hammer.join();

        if (bad.load() != 0) return 90;
        if (served.load() == 0) return 91;
        // The final scrape carries the fleet-merged snapshot: conformant
        // exposition, an advanced round counter, and per-peer tx series.
        const HttpResponse metrics = http_get(server.port(), "/metrics");
        const Exposition e = parse_exposition(metrics.body);
        if (!e.errors.empty()) return 92;
        if (e.samples.at("distsplit_rounds_total") < 1.0) return 93;
        if (e.samples.count("distsplit_tcp_tx_frames_total{slot=\"1\"}") == 0) {
          return 94;
        }
        if (http_get(server.port(), "/healthz").body != "completed\n") {
          return 95;
        }
        return 0;
      });
  EXPECT_TRUE(report.all_ok()) << "rank0=" << report.rank0;
}

// ---- Flight-recorder ring ------------------------------------------------

TEST(Recorder, FlightRecorderEvictsOldestFirstAndCountsDrops) {
  Recorder rec;
  rec.set_event_capacity(4);
  for (std::uint64_t r = 0; r < 10; ++r) {
    rec.add_span(Phase::kRound, r, /*ts_us=*/r * 10, /*dur_us=*/1);
  }
  EXPECT_EQ(rec.events_dropped(), 6u);
  const std::vector<TraceEvent> ordered = rec.ordered_events();
  ASSERT_EQ(ordered.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ordered[i].round, 6u + i) << i;  // oldest-first, rounds 6..9
  }
  // The drop count is a real metric, so it drains/merges fleet-wide.
  bool found = false;
  for (const MetricSnapshot& s : rec.metrics().snapshot()) {
    if (s.name == "obs.events.dropped") {
      EXPECT_EQ(s.value(), 6u);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Shrinking evicts oldest-first and counts the evictions too.
  rec.set_event_capacity(2);
  EXPECT_EQ(rec.events_dropped(), 8u);
  const std::vector<TraceEvent> shrunk = rec.ordered_events();
  ASSERT_EQ(shrunk.size(), 2u);
  EXPECT_EQ(shrunk[0].round, 8u);
  EXPECT_EQ(shrunk[1].round, 9u);

  // Growing keeps the retained events and stops evicting.
  rec.set_event_capacity(8);
  rec.add_span(Phase::kRound, 10, 100, 1);
  EXPECT_EQ(rec.events_dropped(), 8u);
  const std::vector<TraceEvent> grown = rec.ordered_events();
  ASSERT_EQ(grown.size(), 3u);
  EXPECT_EQ(grown[0].round, 8u);
  EXPECT_EQ(grown[2].round, 10u);

  EXPECT_THROW(rec.set_event_capacity(0), CheckError);

  // The trace export notes the truncation in its metadata.
  std::ostringstream trace;
  rec.write_trace_json(trace);
  EXPECT_NE(trace.str().find("\"truncated\": true"), std::string::npos);
  EXPECT_NE(trace.str().find("\"dropped_events\": 8"), std::string::npos);
}

// ---- Seqlock publisher under concurrency ---------------------------------

TEST(SnapshotPublisher, NoTornReadsUnderHammeringReader) {
  Metrics m;
  Counter a = m.counter("a");
  Counter b = m.counter("b");
  SnapshotPublisher pub;
  pub.publish(m, 0);

  // Invariant maintained by the writer: a == b == rounds at every publish.
  // A torn read would surface as a snapshot violating it.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> violations{0};
  std::thread reader([&] {
    PublishedSnapshot snap;
    while (!stop.load(std::memory_order_acquire)) {
      if (!pub.read(snap)) continue;
      std::uint64_t va = 0;
      std::uint64_t vb = 0;
      for (const PublishedMetric& pm : snap.metrics) {
        if (pm.name == "a") va = pm.aggregate().value();
        if (pm.name == "b") vb = pm.aggregate().value();
      }
      if (va != vb || va != snap.rounds) violations.fetch_add(1);
      reads.fetch_add(1);
    }
  });

  // Publish until the reader has materialized plenty of snapshots, so the
  // two threads genuinely overlap (a fixed iteration count can finish
  // before the reader thread is even scheduled).
  constexpr std::uint64_t kMinReads = 2000;
  std::uint64_t iterations = 0;
  while (reads.load(std::memory_order_relaxed) < kMinReads) {
    ++iterations;
    a.add(1);
    b.add(1);
    pub.publish(m, iterations);
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GE(reads.load(), kMinReads);
  EXPECT_EQ(pub.publishes(), iterations + 1);

  // The final snapshot is exactly the last publish.
  PublishedSnapshot snap;
  ASSERT_TRUE(pub.read(snap));
  EXPECT_EQ(snap.rounds, iterations);
}

// ---- Registration-after-publish guard (debug builds) ---------------------

#ifndef NDEBUG
TEST(Metrics, NewRegistrationAfterSnapshotFailsUntilReset) {
  Metrics m;
  m.counter("pre");
  (void)m.snapshot();  // seals
  m.counter("pre");    // re-find of an existing name stays legal
  EXPECT_THROW(m.counter("post"), CheckError);
  m.reset();  // reopens
  m.counter("post");
}
#endif

}  // namespace
}  // namespace ds::obs
