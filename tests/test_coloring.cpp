// Tests for the coloring substrate: Linial reduction, greedy reduction,
// distance colorings, MIS-from-coloring, and the verifiers.

#include <gtest/gtest.h>

#include "coloring/distance_coloring.hpp"
#include "coloring/linial.hpp"
#include "coloring/reduce.hpp"
#include "coloring/verify.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "local/ids.hpp"
#include "support/check.hpp"

namespace ds::coloring {
namespace {

TEST(Linial, NextPrime) {
  EXPECT_EQ(next_prime(1), 2u);
  EXPECT_EQ(next_prime(2), 3u);
  EXPECT_EQ(next_prime(10), 11u);
  EXPECT_EQ(next_prime(13), 17u);
  EXPECT_EQ(next_prime(100), 101u);
}

TEST(Linial, StepShrinksPaletteAndStaysProper) {
  Rng rng(1);
  // One Linial step shrinks C colors to ~(Delta log_q C)^2, which is a
  // *reduction* only when the starting palette is large relative to
  // Delta^2 — start from distinct ids on 1024 nodes.
  const graph::Graph g = graph::gen::random_regular(1024, 4, rng);
  std::vector<std::uint32_t> colors(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) colors[v] = v;
  std::uint32_t new_colors = 0;
  local::CostMeter meter;
  const auto next = linial_step(g, colors, 1024, &new_colors, &meter);
  EXPECT_TRUE(is_proper_coloring(g, next));
  EXPECT_LT(new_colors, 1024u);
  EXPECT_EQ(meter.executed_rounds(), 1u);
  for (std::uint32_t c : next) EXPECT_LT(c, new_colors);
}

TEST(Linial, StepRequiresProperInput) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  std::uint32_t out = 0;
  EXPECT_THROW(linial_step(g, {5, 5}, 6, &out, nullptr), ds::CheckError);
}

TEST(Linial, FullReductionReachesSmallPalette) {
  Rng rng(2);
  const graph::Graph g = graph::gen::random_regular(256, 4, rng);
  Rng id_rng(3);
  const auto ids =
      local::assign_ids(g, local::IdStrategy::kRandomPermutation, id_rng);
  std::uint32_t num_colors = 0;
  local::CostMeter meter;
  const auto colors = linial_coloring(g, ids, &num_colors, &meter);
  EXPECT_TRUE(is_proper_coloring(g, colors));
  // O(Δ²·log²Δ)-ish: far below n, concretely below 400 for Δ=4.
  EXPECT_LT(num_colors, 400u);
  // log*-many steps: a handful.
  EXPECT_LE(meter.executed_rounds(), 8u);
}

TEST(Reduce, ReachesDeltaPlusOne) {
  Rng rng(4);
  const graph::Graph g = graph::gen::random_regular(128, 6, rng);
  Rng id_rng(5);
  const auto ids = local::assign_ids(g, local::IdStrategy::kSequential, id_rng);
  std::uint32_t num_colors = 0;
  local::CostMeter meter;
  const auto colors = delta_plus_one_coloring(g, ids, &num_colors, &meter);
  EXPECT_TRUE(is_proper_coloring(g, colors));
  EXPECT_EQ(num_colors, 7u);
  EXPECT_TRUE(check_proper_coloring(g, colors, num_colors).empty());
}

TEST(Reduce, CannotGoBelowDeltaPlusOne) {
  const graph::Graph g = graph::gen::complete(5);
  std::vector<std::uint32_t> colors{0, 1, 2, 3, 4};
  EXPECT_THROW(reduce_colors(g, colors, 5, 3, nullptr), ds::CheckError);
}

TEST(Reduce, MisFromColoringIsValid) {
  Rng rng(6);
  const graph::Graph g = graph::gen::gnp(80, 0.1, rng);
  Rng id_rng(7);
  const auto ids = local::assign_ids(g, local::IdStrategy::kSequential, id_rng);
  std::uint32_t num_colors = 0;
  const auto colors = delta_plus_one_coloring(g, ids, &num_colors, nullptr);
  const auto mis = mis_from_coloring(g, colors, num_colors, nullptr);
  EXPECT_TRUE(is_mis(g, mis));
}

TEST(Reduce, MisVerifierCatchesViolations) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(is_mis(g, {true, true, false}));   // not independent
  EXPECT_FALSE(is_mis(g, {false, false, false})); // not maximal
  EXPECT_TRUE(is_mis(g, {true, false, true}));
  EXPECT_TRUE(is_mis(g, {false, true, false}));
}

TEST(DistanceColoring, ProperOnPowerGraph) {
  Rng rng(8);
  const graph::Graph g = graph::gen::random_regular(60, 3, rng);
  Rng id_rng(9);
  const auto ids = local::assign_ids(g, local::IdStrategy::kSequential, id_rng);
  local::CostMeter meter;
  const auto pc = color_power(g, 2, ids, &meter);
  const graph::Graph g2 = graph::power(g, 2);
  EXPECT_TRUE(is_proper_coloring(g2, pc.colors));
  EXPECT_LE(pc.num_colors, g2.max_degree() + 1);
  EXPECT_GT(meter.breakdown().at("distance-coloring"), 0.0);
}

TEST(DistanceColoring, RadiusFourForHighGirthSchedules) {
  Rng rng(10);
  const graph::Graph base = graph::gen::cycle(20);
  Rng id_rng(11);
  const auto ids =
      local::assign_ids(base, local::IdStrategy::kSequential, id_rng);
  const auto pc = color_power(base, 4, ids, nullptr);
  EXPECT_TRUE(is_proper_coloring(graph::power(base, 4), pc.colors));
}

TEST(Verify, DetailedMessages) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  EXPECT_NE(check_proper_coloring(g, {1, 1}, 2), "");
  EXPECT_NE(check_proper_coloring(g, {0, 5}, 2), "");
  EXPECT_EQ(check_proper_coloring(g, {0, 1}, 2), "");
  EXPECT_EQ(palette_size({0, 3, 3, 7}), 3u);
}

}  // namespace
}  // namespace ds::coloring
