// Tests for dist::Partition and the halo routing tables: fuzzing on
// gnp / Barabási–Albert / geometric instances asserting that every edge is
// either internal or appears exactly once in each endpoint's halo table,
// degenerate shapes (n < workers, isolated nodes, a single hub star), the
// shared degree-balanced boundary helper, PartitionStats, an in-process
// ship/patch roundtrip of the HaloTransport — plus the in-situ scale path's
// two core determinism claims: for every generator family the union of all
// ranks' shards equals the sequential edge set at 1/2/4 ranks, and
// `Partition::rank_local` reproduces the full constructor's own-rank
// routing tables exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "dist/partition.hpp"
#include "dist/shm_transport.hpp"
#include "graph/generators.hpp"
#include "graph/insitu.hpp"
#include "local/topology.hpp"
#include "net/insitu_runner.hpp"
#include "runtime/parallel_network.hpp"
#include "support/check.hpp"

namespace ds::dist {
namespace {

/// Asserts the full Partition invariant set on one (graph, workers) pair:
/// boundary cover, delivery-table consistency, and — for every cut edge —
/// exactly one entry in each endpoint's halo link, with matching canonical
/// positions on both sides.
void check_partition(const graph::Graph& g, std::size_t workers) {
  const local::NetworkTopology topo(g, local::IdStrategy::kSequential, 1);
  const Partition part(topo, workers);

  // Boundaries cover [0, n) without overlap.
  const auto& bounds = part.boundaries();
  ASSERT_EQ(bounds.size(), workers + 1);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), g.num_nodes());
  for (std::size_t w = 0; w < workers; ++w) {
    EXPECT_LE(part.first_node(w), part.last_node(w));
    for (graph::NodeId v = part.first_node(w); v < part.last_node(w); ++v) {
      EXPECT_EQ(part.owner(v), w);
    }
  }

  // Walk every directed port of every worker and classify it through the
  // local delivery table; collect the cut ports each ordered pair routes.
  std::size_t internal_ports = 0;
  // (src worker, dst worker) -> set of global source ports routed out-halo.
  std::map<std::pair<std::size_t, std::size_t>, std::set<std::size_t>> cut;
  for (std::size_t w = 0; w < workers; ++w) {
    const auto& table = part.local_delivery(w);
    ASSERT_EQ(table.size(), part.num_local_ports(w));
    std::set<std::size_t> seen_out_slots;
    for (graph::NodeId v = part.first_node(w); v < part.last_node(w); ++v) {
      for (std::size_t p = 0; p < g.degree(v); ++p) {
        const std::size_t entry =
            table[topo.port_offset(v) + p - part.port_base(w)];
        const std::size_t d = part.owner(g.neighbors(v)[p]);
        if (d == w) {
          ++internal_ports;
          EXPECT_LT(entry, part.num_local_ports(w));
          EXPECT_EQ(entry + part.port_base(w), topo.delivery_slot(v, p));
        } else {
          EXPECT_GE(entry, part.num_local_ports(w));
          // Out-halo slots are assigned injectively.
          EXPECT_TRUE(
              seen_out_slots.insert(entry - part.num_local_ports(w)).second);
          cut[{w, d}].insert(topo.port_offset(v) + p);
        }
      }
    }
    EXPECT_EQ(seen_out_slots.size(), part.num_out_halo(w));
  }

  // Every edge is either internal (both directed ports internal) or appears
  // exactly once in each endpoint's halo table.
  std::size_t expected_cut_ports = 0;
  for (const graph::Edge& e : g.edges()) {
    const std::size_t wu = part.owner(e.u);
    const std::size_t wv = part.owner(e.v);
    if (wu == wv) continue;
    expected_cut_ports += 2;
    // u's port toward v routed u->v, and vice versa, each exactly once.
    std::size_t port_u = 0;
    while (g.neighbors(e.u)[port_u] != e.v) ++port_u;
    std::size_t port_v = 0;
    while (g.neighbors(e.v)[port_v] != e.u) ++port_v;
    EXPECT_EQ((cut[{wu, wv}].count(topo.port_offset(e.u) + port_u)), 1u);
    EXPECT_EQ((cut[{wv, wu}].count(topo.port_offset(e.v) + port_v)), 1u);
  }
  EXPECT_EQ(internal_ports + expected_cut_ports, topo.total_ports());

  // The links agree with the per-pair cut sets in size, and both sides of
  // each link pair up (same canonical length).
  std::size_t linked = 0;
  for (std::size_t s = 0; s < workers; ++s) {
    for (std::size_t d = 0; d < workers; ++d) {
      const auto& link = part.link(s, d);
      ASSERT_EQ(link.src_out_slots.size(), link.dst_slots.size());
      const auto it = cut.find({s, d});
      EXPECT_EQ(link.src_out_slots.size(),
                it == cut.end() ? 0u : it->second.size());
      linked += link.src_out_slots.size();
      for (const std::uint32_t slot : link.dst_slots) {
        EXPECT_LT(slot, part.num_local_ports(d));
      }
    }
  }
  EXPECT_EQ(linked, expected_cut_ports);

  // Stats agree with the edge classification.
  const PartitionStats& stats = part.stats();
  EXPECT_EQ(stats.parts, workers);
  EXPECT_EQ(stats.cut_edges, expected_cut_ports / 2);
  EXPECT_EQ(stats.cut_edges + stats.internal_edges, g.num_edges());
  if (g.num_nodes() > 0) {
    EXPECT_GE(stats.balance_factor, 1.0);
  }
}

TEST(Partition, FuzzGnp) {
  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    const std::size_t n = 20 + rng.next_index(180);
    const auto g = graph::gen::gnp(n, 0.05, rng);
    for (std::size_t workers : {1, 2, 3, 4, 7}) {
      check_partition(g, workers);
    }
  }
}

TEST(Partition, FuzzBarabasiAlbert) {
  Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    const auto g = graph::gen::barabasi_albert(100 + 150 * i, 3, rng);
    for (std::size_t workers : {2, 4, 5}) {
      check_partition(g, workers);
    }
  }
}

TEST(Partition, FuzzGeometric) {
  Rng rng(9);
  for (int i = 0; i < 6; ++i) {
    const auto g = graph::gen::random_geometric_2d(150, 0.12, rng);
    for (std::size_t workers : {2, 3, 4}) {
      check_partition(g, workers);
    }
  }
}

TEST(Partition, DegenerateShapes) {
  // Fewer nodes than workers: empty ranges must be well-formed.
  check_partition(graph::gen::cycle(3), 8);
  // Isolated nodes: no ports at all, node-balanced fallback.
  check_partition(graph::Graph(7), 3);
  // Single hub star: every edge is incident to the hub — the extreme
  // cut/balance case for a contiguous split.
  graph::Graph star(33);
  for (graph::NodeId v = 1; v < 33; ++v) star.add_edge(0, v);
  check_partition(star, 4);
  // Single node, and the empty graph.
  check_partition(graph::Graph(1), 2);
  check_partition(graph::Graph(0), 2);
}

TEST(Partition, SharedBoundaryHelperMatchesParallelNetwork) {
  // The extracted helper is the same splitting rule ParallelNetwork shards
  // by, and both executors report the same stats struct for equal splits.
  Rng rng(13);
  const auto g = graph::gen::barabasi_albert(500, 4, rng);
  const local::NetworkTopology topo(g, local::IdStrategy::kSequential, 1);
  runtime::ParallelNetwork net(g, local::IdStrategy::kSequential, 1, 2);
  EXPECT_EQ(net.shard_boundaries(),
            degree_balanced_boundaries(topo.port_offsets(),
                                       net.shard_boundaries().size() - 1));
  const PartitionStats from_net = net.shard_stats();
  const PartitionStats direct = partition_stats(g, topo.port_offsets(),
                                                net.shard_boundaries());
  EXPECT_EQ(from_net.cut_edges, direct.cut_edges);
  EXPECT_EQ(from_net.internal_edges, direct.internal_edges);
  EXPECT_DOUBLE_EQ(from_net.balance_factor, direct.balance_factor);
}

// ---- In-process transport roundtrip --------------------------------------

TEST(HaloTransport, ShipPatchRoundtrip) {
  // Simulate one round of two workers in-process: every node writes a
  // distinct message on every port through the unmodified Outbox against
  // its worker's local arena; after ship + patch, every local slot must
  // hold exactly the words the global (sequential-executor) delivery rule
  // assigns to it.
  Rng rng(21);
  const auto g = graph::gen::gnp(60, 0.1, rng);
  const local::NetworkTopology topo(g, local::IdStrategy::kSequential, 2);
  const Partition part(topo, 2);
  const HaloTransport transport(part, 16, 4);
  const std::uint64_t epoch = 7;

  std::vector<local::WordBank> banks(2);
  std::vector<std::vector<local::MessageSpan>> arenas(2);
  for (std::size_t w = 0; w < 2; ++w) {
    arenas[w].resize(part.num_local_ports(w) + part.num_out_halo(w));
    for (graph::NodeId v = part.first_node(w); v < part.last_node(w); ++v) {
      local::Outbox out(&banks[w], 0, arenas[w].data(),
                        part.local_delivery(w).data() +
                            (topo.port_offset(v) - part.port_base(w)),
                        g.degree(v), epoch);
      for (std::size_t p = 0; p < g.degree(v); ++p) {
        out.write(p, {v * 1000ull + p, ~(v * 1000ull + p)});
      }
    }
  }
  for (std::size_t w = 0; w < 2; ++w) {
    transport.ship(w, arenas[w].data(), banks[w].data(), epoch);
  }
  for (std::size_t w = 0; w < 2; ++w) {
    transport.patch(w, arenas[w].data(), epoch);
    auto bases = transport.bank_bases(w, banks[w].data());
    for (graph::NodeId v = part.first_node(w); v < part.last_node(w); ++v) {
      local::Inbox inbox(
          arenas[w].data() + (topo.port_offset(v) - part.port_base(w)),
          g.degree(v), bases.data(), epoch);
      for (std::size_t p = 0; p < g.degree(v); ++p) {
        // The message on port p came from the neighbor's reverse port.
        const graph::NodeId u = g.neighbors(v)[p];
        const std::uint64_t expected =
            u * 1000ull + topo.reverse_port(v, p);
        ASSERT_EQ(inbox[p].size(), 2u) << "v=" << v << " p=" << p;
        EXPECT_EQ(inbox[p][0], expected);
        EXPECT_EQ(inbox[p][1], ~expected);
      }
    }
  }
}

// ---- In-situ generation determinism --------------------------------------

/// One representative small instance per generator family.
const std::vector<std::string>& family_specs() {
  static const std::vector<std::string> specs = {
      "torus:w=13,h=9",        "gnp:n=150,deg=6",  "gnm:n=150,deg=6",
      "ba:n=150,d=3",          "rgg:n=150,deg=7",  "biregular:nu=60,nv=30,delta=4",
      "kronecker:scale=7,deg=5",
  };
  return specs;
}

bool edge_lex_less(const graph::Edge& a, const graph::Edge& b) {
  return a.u != b.u ? a.u < b.u : a.v < b.v;
}

TEST(InsituGenerator, ShardUnionMatchesSequentialEdgeSet) {
  // For every family: the union of all ranks' shards at 1, 2 and 4 ranks
  // equals the sequential generator's edge set for the same seed — the
  // property that makes in-situ runs bit-identical to materialized ones.
  // Row families additionally produce *disjoint* shards.
  for (const std::string& text : family_specs()) {
    const graph::DistributedGenerator dg(graph::GenSpec::parse(text), 13);
    const graph::Graph g = dg.generate_full();
    std::vector<graph::Edge> expected(g.edges().begin(), g.edges().end());
    for (const std::size_t ranks : {1, 2, 4}) {
      const auto bounds = net::uniform_boundaries(dg.num_nodes(), ranks);
      std::vector<graph::Edge> all;
      std::size_t shard_sum = 0;
      for (std::size_t r = 0; r < ranks; ++r) {
        const auto shard = dg.shard(bounds[r], bounds[r + 1]);
        EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end(),
                                   edge_lex_less))
            << text << " rank " << r;
        shard_sum += shard.size();
        all.insert(all.end(), shard.begin(), shard.end());
      }
      std::sort(all.begin(), all.end(), edge_lex_less);
      all.erase(std::unique(all.begin(), all.end(),
                            [](const graph::Edge& a, const graph::Edge& b) {
                              return a.u == b.u && a.v == b.v;
                            }),
                all.end());
      ASSERT_EQ(all.size(), expected.size()) << text << " ranks=" << ranks;
      for (std::size_t i = 0; i < all.size(); ++i) {
        ASSERT_EQ(all[i].u, expected[i].u) << text << " ranks=" << ranks;
        ASSERT_EQ(all[i].v, expected[i].v) << text << " ranks=" << ranks;
      }
      if (!dg.self_discovering()) {
        EXPECT_EQ(shard_sum, expected.size())
            << text << " ranks=" << ranks << ": row-family shards overlap";
      }
    }
  }
}

TEST(InsituGenerator, GenSpecParsing) {
  const graph::GenSpec spec = graph::GenSpec::parse("torus:h=9,w=13");
  EXPECT_EQ(spec.family, "torus");
  EXPECT_EQ(spec.required("w"), 13u);
  EXPECT_EQ(spec.param("missing", 7), 7u);
  // Canonical form sorts keys — stable across parses and usable as a
  // digest/cache key.
  EXPECT_EQ(spec.canonical(), "torus:h=9,w=13");
  EXPECT_EQ(graph::GenSpec::parse("torus:w=13,h=9").canonical(),
            spec.canonical());
  EXPECT_THROW(graph::GenSpec::parse("torus:w=x"), ds::CheckError);
  EXPECT_THROW(graph::DistributedGenerator(
                   graph::GenSpec::parse("nosuch:n=4"), 1),
               ds::CheckError);
  EXPECT_THROW(graph::DistributedGenerator(
                   graph::GenSpec::parse("torus:w=1,h=5"), 1),
               ds::CheckError);
}

TEST(InsituGenerator, UniformBoundariesCoverEveryNode) {
  for (const std::size_t n : {0u, 1u, 5u, 1000u}) {
    for (const std::size_t ranks : {1u, 2u, 3u, 7u}) {
      const auto bounds = net::uniform_boundaries(n, ranks);
      ASSERT_EQ(bounds.size(), ranks + 1);
      EXPECT_EQ(bounds.front(), 0u);
      EXPECT_EQ(bounds.back(), n);
      EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
    }
  }
}

// ---- Rank-local partition construction -----------------------------------

TEST(Partition, RankLocalMatchesFullConstruction) {
  // Built from nothing but the boundaries and the rank's own CSR,
  // rank_local must reproduce the full constructor's own-rank tables
  // bit-for-bit: the local delivery table, the out-halo assignment, and
  // both directions of every link touching the rank.
  for (const std::string& text : family_specs()) {
    const graph::DistributedGenerator dg(graph::GenSpec::parse(text), 29);
    const graph::Graph g = dg.generate_full();
    const local::NetworkTopology topo(g, local::IdStrategy::kSequential, 1);
    for (const std::size_t workers : {1, 2, 4}) {
      const Partition full(topo, workers);
      const auto& bounds = full.boundaries();
      for (std::size_t r = 0; r < workers; ++r) {
        // The complete incident edge list of the range — what the in-situ
        // runner assembles from its shard plus the cut-edge exchange.
        std::vector<graph::Edge> incident;
        for (const graph::Edge& e : g.edges()) {
          const bool u_in = e.u >= bounds[r] && e.u < bounds[r + 1];
          const bool v_in = e.v >= bounds[r] && e.v < bounds[r + 1];
          if (u_in || v_in) incident.push_back(e);
        }
        const graph::LocalCsr csr =
            graph::build_local_csr(incident, bounds[r], bounds[r + 1]);
        const Partition local = Partition::rank_local(bounds, r, csr);

        ASSERT_EQ(local.num_workers(), workers);
        EXPECT_EQ(local.boundaries(), bounds);
        EXPECT_EQ(local.port_base(r), 0u) << text;
        ASSERT_EQ(local.num_local_ports(r), full.num_local_ports(r))
            << text << " workers=" << workers << " rank=" << r;
        EXPECT_EQ(local.num_out_halo(r), full.num_out_halo(r));
        EXPECT_EQ(local.local_delivery(r), full.local_delivery(r))
            << text << " workers=" << workers << " rank=" << r;
        for (std::size_t d = 0; d < workers; ++d) {
          EXPECT_EQ(local.link(r, d).src_out_slots,
                    full.link(r, d).src_out_slots)
              << text << " link(" << r << "," << d << ")";
          EXPECT_EQ(local.link(d, r).dst_slots, full.link(d, r).dst_slots)
              << text << " link(" << d << "," << r << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace ds::dist
