// Tests for the randomized trial coloring (Johansson) on the LOCAL
// simulator.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "coloring/randcolor.hpp"
#include "coloring/verify.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace ds::coloring {
namespace {

TEST(RandColor, EmptyAndSingletonGraphs) {
  graph::Graph empty(0);
  EXPECT_EQ(randomized_coloring(empty, 1).num_colors, 0u);
  graph::Graph one(1);
  const auto outcome = randomized_coloring(one, 1);
  EXPECT_EQ(outcome.num_colors, 1u);
  EXPECT_EQ(outcome.colors[0], 0u);
}

TEST(RandColor, CompleteGraphUsesExactlyDeltaPlusOne) {
  const auto g = graph::gen::complete(12);
  const auto outcome = randomized_coloring(g, 3);
  EXPECT_TRUE(is_proper_coloring(g, outcome.colors));
  EXPECT_EQ(outcome.num_colors, 12u);  // K_12 needs all Δ+1 = 12 colors
}

class RandColorSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RandColorSweep, ProperWithinDeltaPlusOne) {
  const auto [n, d] = GetParam();
  Rng rng(n * 7 + d);
  const auto g = graph::gen::random_regular(n, d, rng);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    local::CostMeter meter;
    const auto outcome = randomized_coloring(g, seed, &meter);
    EXPECT_TRUE(is_proper_coloring(g, outcome.colors));
    EXPECT_LE(outcome.num_colors, static_cast<std::uint32_t>(d + 1));
    EXPECT_EQ(meter.executed_rounds(), outcome.executed_rounds);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RandColorSweep,
                         ::testing::Values(std::make_tuple(64, 4),
                                           std::make_tuple(128, 8),
                                           std::make_tuple(256, 16),
                                           std::make_tuple(256, 3)));

TEST(RandColor, RoundsAreLogarithmicInPractice) {
  for (std::size_t n : {64, 256, 1024}) {
    Rng rng(n + 3);
    const auto g = graph::gen::random_regular(n, 6, rng);
    const auto outcome = randomized_coloring(g, 11);
    EXPECT_LE(outcome.executed_rounds,
              8 * static_cast<std::size_t>(std::log2(n)) + 8)
        << "n=" << n;
  }
}

TEST(RandColor, BipartiteDoubleCoverStaysProper) {
  // Cycle of even length — a 2-colorable graph; trial coloring must still
  // produce a proper (not necessarily 2-)coloring with at most 3 colors.
  const auto g = graph::gen::cycle(32);
  const auto outcome = randomized_coloring(g, 5);
  EXPECT_TRUE(is_proper_coloring(g, outcome.colors));
  EXPECT_LE(outcome.num_colors, 3u);
}

TEST(RandColor, SeedsProduceDifferentColorings) {
  Rng rng(9);
  const auto g = graph::gen::random_regular(128, 8, rng);
  const auto a = randomized_coloring(g, 1).colors;
  const auto b = randomized_coloring(g, 2).colors;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ds::coloring
