// Unit tests for the support substrate: checks, RNG, statistics, tables,
// option parsing.

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace ds {
namespace {

TEST(Check, PassingCheckDoesNothing) { DS_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsWithLocation) {
  try {
    DS_CHECK_MSG(false, "context message");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context message"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_raw(), b.next_raw());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_raw() == b.next_raw()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkIsStableAndIndependentOfCallOrder) {
  Rng parent(99);
  Rng c1 = parent.fork(5);
  Rng c2 = parent.fork(6);
  // Forking again with the same stream id reproduces the same child.
  Rng c1_again = parent.fork(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(c1.next_raw(), c1_again.next_raw());
  }
  // Distinct streams diverge.
  Rng c2_again = parent.fork(6);
  EXPECT_EQ(c2.next_raw(), c2_again.next_raw());
}

TEST(Rng, BoundedDrawsStayInBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_u64(17), 17u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(11);
  const auto perm = rng.permutation(50);
  std::vector<bool> seen(50, false);
  for (std::size_t x : perm) {
    ASSERT_LT(x, 50u);
    EXPECT_FALSE(seen[x]);
    seen[x] = true;
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(123);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.next_bool()) ++heads;
  }
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 4.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(LinearFit, DegenerateXGivesZeroSlope) {
  std::vector<double> x{2, 2, 2};
  std::vector<double> y{1, 2, 3};
  const LinearFit fit = fit_line(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(Table, RendersAlignedCells) {
  Table t({"name", "value"});
  t.row().cell("alpha").num(static_cast<long long>(42));
  t.row().cell("b").num(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  const std::string rendered = os.str();
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("42"), std::string::npos);
  EXPECT_NE(rendered.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CellWithoutRowThrows) {
  Table t({"x"});
  EXPECT_THROW(t.cell("oops"), CheckError);
}

TEST(FormatDouble, SwitchesToScientificForExtremes) {
  EXPECT_NE(format_double(1.5e-9).find("e"), std::string::npos);
  EXPECT_EQ(format_double(12.5).find("e"), std::string::npos);
}

TEST(Options, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=128", "--verbose", "--eps=0.25"};
  Options opts(4, argv);
  EXPECT_EQ(opts.get_int("n", 0), 128);
  EXPECT_TRUE(opts.has("verbose"));
  EXPECT_DOUBLE_EQ(opts.get_double("eps", 0.0), 0.25);
  EXPECT_EQ(opts.get_int("missing", 7), 7);
  EXPECT_EQ(opts.seed(), 1u);
}

TEST(Options, RejectsMalformedArguments) {
  const char* argv[] = {"prog", "n=128"};
  EXPECT_THROW(Options(2, argv), CheckError);
}

}  // namespace
}  // namespace ds
