// Tests for Section 5: the girth >= 10 algorithms, the composed pessimistic
// estimator of the derandomized shattering, and the Lemma 5.1 residual
// structure.

#include <gtest/gtest.h>

#include "derand/engine.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "splitting/high_girth.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::splitting {
namespace {

graph::BipartiteGraph girth10_instance(std::size_t n, std::size_t d,
                                       std::uint64_t seed) {
  Rng rng(seed);
  const auto base = graph::gen::high_girth_regular(n, d, 5, rng);
  return graph::gen::incidence_bipartite(base);
}

TEST(HighGirth, InstanceGeneratorGivesGirthTen) {
  const auto b = girth10_instance(500, 6, 1);
  EXPECT_GE(graph::girth(b.unified()), 10u);
  EXPECT_EQ(b.rank(), 2u);
  EXPECT_EQ(b.min_left_degree(), 6u);
}

TEST(HighGirth, RandomizedTheorem53) {
  Rng rng(2);
  const auto b = girth10_instance(700, 6, 2);
  local::CostMeter meter;
  HighGirthInfo info;
  const Coloring colors = high_girth_rand_split(b, rng, &meter, &info);
  EXPECT_TRUE(is_weak_splitting(b, colors));
  // Residual rank is tiny relative to δ on girth-10 instances.
  EXPECT_LE(info.residual_rank, b.rank());
}

TEST(HighGirth, DeterministicTheorem52) {
  Rng rng(3);
  const auto b = girth10_instance(600, 6, 3);
  local::CostMeter meter;
  HighGirthInfo info;
  const Coloring colors = high_girth_det_split(b, rng, &meter, &info);
  EXPECT_TRUE(is_weak_splitting(b, colors));
  EXPECT_GT(info.schedule_colors, 0u);
  EXPECT_GT(meter.breakdown().at("slocal-compile"), 0.0);
}

TEST(HighGirth, GirthCheckRejectsLowGirth) {
  Rng rng(4);
  const auto base = graph::gen::random_regular(100, 6, rng);
  // A random regular graph almost surely has short cycles; its incidence
  // graph has girth < 10.
  const auto b = graph::gen::incidence_bipartite(base);
  ASSERT_LT(graph::girth(b.unified()), 10u);
  EXPECT_THROW(high_girth_rand_split(b, rng), ds::CheckError);
}

TEST(HighGirth, DegreePrecondition) {
  Rng rng(5);
  const auto b = graph::gen::bipartite_cycle(12);  // δ = 2 < 5
  HighGirthConfig config;
  EXPECT_THROW(high_girth_det_split(b, rng, nullptr, nullptr, config),
               ds::CheckError);
}

TEST(ShatterEstimator, SupermartingaleAcceptedByEngine) {
  // The engine enforces the supermartingale property on every greedy step —
  // running to completion on a girth-10 instance is the regression test for
  // the Lemma 5.1 conditioning subtlety (two-hop constraints reachable only
  // through the conditioned node must be excluded).
  const auto b = girth10_instance(400, 6, 6);
  HighGirthConfig config;
  const derand::Problem problem = high_girth_shatter_problem(b, config);
  std::vector<std::uint32_t> order(b.num_right());
  for (graph::RightId v = 0; v < b.num_right(); ++v) order[v] = v;
  EXPECT_NO_THROW(derand::derandomize(problem, order));
}

TEST(ShatterEstimator, ColoredConstraintIsFree) {
  const auto b = girth10_instance(400, 6, 7);
  HighGirthConfig config;
  const derand::Problem problem = high_girth_shatter_problem(b, config);
  std::vector<int> a(b.num_right(), derand::kUnset);
  a[0] = 0;  // red
  EXPECT_DOUBLE_EQ(problem.phi(0, a), 0.0);
  a[0] = 1;  // blue
  EXPECT_DOUBLE_EQ(problem.phi(0, a), 0.0);
  a[0] = 2;  // uncolored: estimator positive
  EXPECT_GT(problem.phi(0, a), 0.0);
}

TEST(ShatterEstimator, UnsetIsHalfOfUncolored) {
  const auto b = girth10_instance(400, 6, 8);
  HighGirthConfig config;
  const derand::Problem problem = high_girth_shatter_problem(b, config);
  std::vector<int> a(b.num_right(), derand::kUnset);
  const double unset_value = problem.phi(0, a);
  a[0] = 2;
  const double uncolored_value = problem.phi(0, a);
  EXPECT_NEAR(unset_value, 0.5 * uncolored_value, 1e-9 * uncolored_value);
}

TEST(ShatterEstimator, ThreeValuedMartingaleNumerically) {
  // E[phi | variable choice ~ (1/4, 1/4, 1/2)] must not exceed the unset
  // value for any constraint/variable pair we probe.
  const auto b = girth10_instance(400, 6, 9);
  HighGirthConfig config;
  const derand::Problem problem = high_girth_shatter_problem(b, config);
  std::vector<int> a(b.num_right(), derand::kUnset);
  for (std::uint32_t j = 0; j < 20; ++j) {
    for (std::uint32_t v : problem.var_constraints[j]) {
      const double before = problem.phi(v, a);
      a[j] = 0;
      const double red = problem.phi(v, a);
      a[j] = 1;
      const double blue = problem.phi(v, a);
      a[j] = 2;
      const double unc = problem.phi(v, a);
      a[j] = derand::kUnset;
      EXPECT_LE(0.25 * red + 0.25 * blue + 0.5 * unc,
                before * (1.0 + 1e-9) + 1e-12)
          << "constraint " << v << " variable " << j;
    }
  }
}

TEST(HighGirth, ResidualSolvedWithTheorem27WhenApplicable) {
  Rng rng(10);
  const auto b = girth10_instance(900, 8, 10);
  HighGirthInfo info;
  const Coloring colors = high_girth_rand_split(b, rng, nullptr, &info);
  EXPECT_TRUE(is_weak_splitting(b, colors));
  // δ_H >= δ/4 = 2 always holds by the uncoloring rule.
  if (info.num_components > 0) {
    EXPECT_GE(info.residual_min_degree, 2u);
  }
}

}  // namespace
}  // namespace ds::splitting
