// Unit tests for the graph substrate: Graph, Multigraph, BipartiteGraph,
// structural properties, IO, and the virtual-node transforms.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/multigraph.hpp"
#include "graph/properties.hpp"
#include "graph/virtual_split.hpp"
#include "support/check.hpp"

namespace ds::graph {
namespace {

Graph triangle_with_tail() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(Graph, DegreesAndEdges) {
  const Graph g = triangle_with_tail();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Graph, RejectsSelfLoopsAndParallelEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 0), CheckError);
  EXPECT_THROW(g.add_edge(1, 0), CheckError);
}

TEST(Graph, InducedSubgraphKeepsInternalEdges) {
  const Graph g = triangle_with_tail();
  const auto [sub, to_parent] = g.induced_subgraph({0, 2, 3});
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // {0,2} and {2,3}
  EXPECT_EQ(to_parent.size(), 3u);
  EXPECT_EQ(to_parent[0], 0u);
  EXPECT_EQ(to_parent[1], 2u);
}

TEST(Graph, InducedSubgraphRejectsDuplicates) {
  const Graph g = triangle_with_tail();
  EXPECT_THROW(g.induced_subgraph({0, 0}), CheckError);
}

TEST(Multigraph, ParallelEdgesAndSelfLoops) {
  Multigraph m(2);
  const EdgeId e1 = m.add_edge(0, 1);
  const EdgeId e2 = m.add_edge(0, 1);
  const EdgeId loop = m.add_edge(1, 1);
  EXPECT_NE(e1, e2);
  EXPECT_EQ(m.degree(0), 2u);
  EXPECT_EQ(m.degree(1), 4u);  // two parallel + self-loop counted twice
  EXPECT_EQ(m.other_endpoint(e1, 0), 1u);
  EXPECT_EQ(m.other_endpoint(loop, 1), 1u);
}

TEST(Multigraph, DiscrepancyCountsBalance) {
  Multigraph m(3);
  m.add_edge(0, 1);
  m.add_edge(0, 2);
  Orientation orient;
  orient.toward_v = {true, true};  // both out of node 0
  EXPECT_EQ(orientation_discrepancy(m, orient, 0), 2u);
  EXPECT_EQ(orientation_discrepancy(m, orient, 1), 1u);
  orient.toward_v = {true, false};  // one out, one in at node 0
  EXPECT_EQ(orientation_discrepancy(m, orient, 0), 0u);
}

TEST(Multigraph, SelfLoopHasZeroDiscrepancy) {
  Multigraph m(1);
  m.add_edge(0, 0);
  Orientation orient;
  orient.toward_v = {true};
  EXPECT_EQ(orientation_discrepancy(m, orient, 0), 0u);
}

BipartiteGraph small_instance() {
  // U = {0,1}, V = {0,1,2}; u0 ~ {v0,v1}, u1 ~ {v1,v2}.
  BipartiteGraph b(2, 3);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  b.add_edge(1, 1);
  b.add_edge(1, 2);
  return b;
}

TEST(Bipartite, DegreesRankAndNeighbors) {
  const BipartiteGraph b = small_instance();
  EXPECT_EQ(b.num_left(), 2u);
  EXPECT_EQ(b.num_right(), 3u);
  EXPECT_EQ(b.num_nodes(), 5u);
  EXPECT_EQ(b.num_edges(), 4u);
  EXPECT_EQ(b.min_left_degree(), 2u);
  EXPECT_EQ(b.max_left_degree(), 2u);
  EXPECT_EQ(b.rank(), 2u);  // v1 has two constraints
  EXPECT_EQ(b.min_right_degree(), 1u);
  EXPECT_EQ(b.left_neighbors(0), (std::vector<RightId>{0, 1}));
  EXPECT_EQ(b.right_neighbors(1), (std::vector<LeftId>{0, 1}));
  EXPECT_TRUE(b.has_edge(0, 1));
  EXPECT_FALSE(b.has_edge(0, 2));
}

TEST(Bipartite, RejectsParallelEdges) {
  BipartiteGraph b(1, 1);
  b.add_edge(0, 0);
  EXPECT_THROW(b.add_edge(0, 0), CheckError);
}

TEST(Bipartite, FilterEdgesRenumbers) {
  const BipartiteGraph b = small_instance();
  const auto [filtered, new_to_old] =
      b.filter_edges({true, false, false, true});
  EXPECT_EQ(filtered.num_edges(), 2u);
  EXPECT_EQ(filtered.num_left(), 2u);   // node sets preserved
  EXPECT_EQ(filtered.num_right(), 3u);
  EXPECT_EQ(new_to_old, (std::vector<EdgeId>{0, 3}));
  EXPECT_EQ(filtered.left_degree(0), 1u);
  EXPECT_EQ(filtered.right_degree(1), 0u);
}

TEST(Bipartite, UnifiedGraphLayout) {
  const BipartiteGraph b = small_instance();
  const Graph u = b.unified();
  EXPECT_EQ(u.num_nodes(), 5u);
  EXPECT_EQ(u.num_edges(), 4u);
  EXPECT_TRUE(u.has_edge(b.unified_left(0), b.unified_right(0)));
  EXPECT_TRUE(u.has_edge(b.unified_left(1), b.unified_right(2)));
}

TEST(Bipartite, ConnectedComponentsSplitAndMapBack) {
  BipartiteGraph b(3, 3);
  b.add_edge(0, 0);
  b.add_edge(1, 1);
  b.add_edge(2, 1);  // u1,u2,v1 one component; u0,v0 another; v2 isolated
  const auto comps = connected_components(b);
  EXPECT_EQ(comps.size(), 2u);
  std::size_t total_edges = 0;
  for (const auto& c : comps) {
    total_edges += c.graph.num_edges();
    // Mapping consistency: every component edge exists in the parent.
    for (EdgeId e = 0; e < c.graph.num_edges(); ++e) {
      const auto [lu, lv] = c.graph.endpoints(e);
      EXPECT_TRUE(b.has_edge(c.left_to_parent[lu], c.right_to_parent[lv]));
    }
  }
  EXPECT_EQ(total_edges, b.num_edges());
}

TEST(Bipartite, IsolatedNodesOptIn) {
  BipartiteGraph b(1, 2);
  b.add_edge(0, 0);
  EXPECT_EQ(connected_components(b, false).size(), 1u);
  EXPECT_EQ(connected_components(b, true).size(), 2u);
}

TEST(Properties, BfsDistances) {
  const Graph g = triangle_with_tail();
  const auto dist = bfs_distances(g, 3);
  EXPECT_EQ(dist[3], 0u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[0], 2u);
  const auto capped = bfs_distances(g, 3, 1);
  EXPECT_EQ(capped[0], SIZE_MAX);
}

TEST(Properties, ComponentsAndConnectivity) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto labels = component_labels(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(triangle_with_tail()));
}

TEST(Properties, GirthOfKnownGraphs) {
  EXPECT_EQ(girth(triangle_with_tail()), 3u);
  Graph c5(5);
  for (NodeId v = 0; v < 5; ++v) c5.add_edge(v, (v + 1) % 5);
  EXPECT_EQ(girth(c5), 5u);
  Graph tree(4);
  tree.add_edge(0, 1);
  tree.add_edge(1, 2);
  tree.add_edge(1, 3);
  EXPECT_EQ(girth(tree), SIZE_MAX);
  EXPECT_TRUE(shortest_cycle(tree).empty());
}

TEST(Properties, PowerGraphAndBall) {
  Graph path(4);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.add_edge(2, 3);
  const Graph p2 = power(path, 2);
  EXPECT_TRUE(p2.has_edge(0, 2));
  EXPECT_FALSE(p2.has_edge(0, 3));
  EXPECT_EQ(ball(path, 0, 2), (std::vector<NodeId>{1, 2}));
}

TEST(Io, GraphRoundTrip) {
  const Graph g = triangle_with_tail();
  std::stringstream ss;
  io::write_edge_list(ss, g);
  const Graph h = io::read_edge_list(ss);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_TRUE(h.has_edge(0, 2));
}

TEST(Io, BipartiteRoundTripAndDot) {
  const BipartiteGraph b = small_instance();
  std::stringstream ss;
  io::write_bipartite(ss, b);
  const BipartiteGraph c = io::read_bipartite(ss);
  EXPECT_EQ(c.num_left(), b.num_left());
  EXPECT_EQ(c.num_edges(), b.num_edges());
  EXPECT_TRUE(c.has_edge(1, 2));
  const std::string dot = io::to_dot(b, {"red", "blue", "red"});
  EXPECT_NE(dot.find("fillcolor=red"), std::string::npos);
}

TEST(Io, MalformedInputThrows) {
  std::stringstream ss("not a header");
  EXPECT_THROW(io::read_edge_list(ss), CheckError);
}

TEST(VirtualSplit, NormalizationBoundsDegrees) {
  // One left node of degree 9 with delta = 2 must split into 4 copies.
  BipartiteGraph b(1, 9);
  for (RightId v = 0; v < 9; ++v) b.add_edge(0, v);
  const auto norm = normalize_left_degrees(b, 2);
  EXPECT_EQ(norm.graph.num_left(), 4u);
  for (LeftId u = 0; u < norm.graph.num_left(); ++u) {
    EXPECT_GE(norm.graph.left_degree(u), 2u);
    EXPECT_LT(norm.graph.left_degree(u), 4u);
    EXPECT_EQ(norm.left_to_original[u], 0u);
  }
  EXPECT_EQ(norm.graph.num_edges(), b.num_edges());
}

TEST(VirtualSplit, SmallDegreesKeptWhole) {
  BipartiteGraph b(1, 4);
  for (RightId v = 0; v < 4; ++v) b.add_edge(0, v);
  const auto norm = normalize_left_degrees(b, 2);  // deg 4 = 2*delta: kept
  EXPECT_EQ(norm.graph.num_left(), 1u);
  EXPECT_EQ(norm.graph.left_degree(0), 4u);
}

TEST(VirtualSplit, PaddingRaisesMinDegree) {
  Graph g(3);
  g.add_edge(0, 1);  // degrees 1,1,0
  const auto padded = pad_to_min_degree(g, 4);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_GE(padded.graph.degree(v), 4u);
    EXPECT_FALSE(padded.is_virtual[v]);
  }
  for (NodeId v = 3; v < padded.graph.num_nodes(); ++v) {
    EXPECT_TRUE(padded.is_virtual[v]);
    EXPECT_LE(padded.graph.degree(v), 4u);
  }
}

}  // namespace
}  // namespace ds::graph
