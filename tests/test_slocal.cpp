// Tests for the SLOCAL engine and its LOCAL compilation via power colorings.

#include <gtest/gtest.h>

#include <set>

#include "coloring/distance_coloring.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "local/ids.hpp"
#include "slocal/compile.hpp"
#include "slocal/engine.hpp"
#include "support/check.hpp"

namespace ds::slocal {
namespace {

TEST(Order, AllStrategiesArePermutations) {
  Rng rng(1);
  const graph::Graph g = graph::gen::gnp(40, 0.15, rng);
  for (Order o : {Order::kByIndex, Order::kRandom, Order::kDegreeDescending,
                  Order::kDegreeAscending}) {
    const auto order = make_order(g, o, rng);
    std::set<graph::NodeId> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), g.num_nodes());
  }
}

TEST(Order, DegreeOrderingsAreSorted) {
  Rng rng(2);
  const graph::Graph g = graph::gen::gnp(40, 0.2, rng);
  const auto desc = make_order(g, Order::kDegreeDescending, rng);
  for (std::size_t i = 1; i < desc.size(); ++i) {
    EXPECT_GE(g.degree(desc[i - 1]), g.degree(desc[i]));
  }
  const auto asc = make_order(g, Order::kDegreeAscending, rng);
  for (std::size_t i = 1; i < asc.size(); ++i) {
    EXPECT_LE(g.degree(asc[i - 1]), g.degree(asc[i]));
  }
}

TEST(Engine, VisitsEveryNodeOnceWithItsBall) {
  Rng rng(3);
  const graph::Graph g = graph::gen::cycle(9);
  const auto order = make_order(g, Order::kRandom, rng);
  std::vector<int> visits(g.num_nodes(), 0);
  run(g, 2, order, [&](graph::NodeId v, const std::vector<graph::NodeId>& ball) {
    ++visits[v];
    EXPECT_EQ(ball.size(), 4u);  // radius-2 ball on a long cycle
    for (graph::NodeId w : ball) EXPECT_NE(w, v);
  });
  for (int count : visits) EXPECT_EQ(count, 1);
}

TEST(Engine, RejectsBadOrders) {
  const graph::Graph g = graph::gen::cycle(5);
  EXPECT_THROW(run(g, 1, {0, 1, 2}, [](auto, const auto&) {}),
               ds::CheckError);
  EXPECT_THROW(run(g, 1, {0, 1, 2, 3, 3}, [](auto, const auto&) {}),
               ds::CheckError);
}

TEST(Compile, GreedyColoringViaScheduleIsProper) {
  // Classic SLOCAL(1) greedy coloring compiled by a G¹ coloring: the result
  // must be a proper (Δ+1)-coloring regardless of the schedule's classes.
  Rng rng(4);
  const graph::Graph g = graph::gen::gnp(50, 0.15, rng);
  Rng id_rng(5);
  const auto ids =
      local::assign_ids(g, local::IdStrategy::kRandomPermutation, id_rng);
  local::CostMeter meter;
  const auto schedule = coloring::color_power(g, 1, ids, &meter);

  std::vector<std::uint32_t> colors(g.num_nodes(), UINT32_MAX);
  const std::size_t classes = run_with_coloring(
      g, 1, schedule.colors,
      [&](graph::NodeId v, const std::vector<graph::NodeId>& ball) {
        std::set<std::uint32_t> used;
        for (graph::NodeId w : ball) {
          if (colors[w] != UINT32_MAX) used.insert(colors[w]);
        }
        std::uint32_t c = 0;
        while (used.count(c) > 0) ++c;
        colors[v] = c;
      },
      &meter);
  // num_colors is the declared palette bound; the schedule runs one class
  // per *used* color, which can be fewer.
  EXPECT_LE(classes, schedule.num_colors);
  EXPECT_GE(classes, 1u);
  for (const graph::Edge& e : g.edges()) {
    EXPECT_NE(colors[e.u], colors[e.v]);
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(colors[v], g.max_degree());
  }
  EXPECT_GT(meter.breakdown().at("slocal-compile"), 0.0);
}

TEST(Compile, RejectsImproperPowerColoring) {
  const graph::Graph g = graph::gen::cycle(6);
  // All-zero coloring is not proper on G².
  std::vector<std::uint32_t> bad(g.num_nodes(), 0);
  EXPECT_THROW(
      run_with_coloring(g, 2, bad, [](auto, const auto&) {}, nullptr),
      ds::CheckError);
}

TEST(Compile, ChargesCtRounds) {
  const graph::Graph g = graph::gen::cycle(8);
  Rng id_rng(6);
  const auto ids =
      local::assign_ids(g, local::IdStrategy::kSequential, id_rng);
  local::CostMeter inner;
  const auto schedule = coloring::color_power(g, 2, ids, &inner);
  local::CostMeter meter;
  run_with_coloring(g, 2, schedule.colors, [](auto, const auto&) {}, &meter);
  EXPECT_DOUBLE_EQ(meter.breakdown().at("slocal-compile"),
                   2.0 * schedule.num_colors);
}

}  // namespace
}  // namespace ds::slocal
