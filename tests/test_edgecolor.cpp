// Tests for the edge splitting / edge coloring extension module (the
// Section 1.1 edge-analogue pipeline).

#include <gtest/gtest.h>

#include <tuple>

#include "edgecolor/edge_coloring.hpp"
#include "graph/generators.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::edgecolor {
namespace {

TEST(EdgeSplit, DiscrepancyAtMostThreeEverywhere) {
  Rng rng(1);
  const auto g = graph::gen::random_regular(100, 9, rng);
  local::CostMeter meter;
  const EdgeSplit is_red = edge_split(g, 0.1, &meter);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    long long balance = 0;
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const graph::Edge& ed = g.edges()[e];
      if (ed.u != v && ed.v != v) continue;
      balance += is_red[e] ? 1 : -1;
    }
    EXPECT_LE(std::abs(balance), 3) << "node " << v;
  }
  EXPECT_GT(meter.breakdown().at("degree-split"), 0.0);
}

TEST(EdgeSplit, DiscrepancySweepAcrossDegreesAndSeeds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    for (std::size_t d : {3, 6, 9, 16, 31}) {
      const auto g = graph::gen::random_regular(80, d, rng);
      const EdgeSplit is_red = edge_split(g, 0.1, nullptr);
      std::vector<long long> balance(g.num_nodes(), 0);
      for (std::size_t e = 0; e < g.num_edges(); ++e) {
        const graph::Edge& ed = g.edges()[e];
        balance[ed.u] += is_red[e] ? 1 : -1;
        balance[ed.v] += is_red[e] ? 1 : -1;
      }
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_LE(std::abs(balance[v]), 3)
            << "seed " << seed << " d " << d << " node " << v;
      }
    }
  }
}

TEST(EdgeSplit, VerifierWindows) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  // Node 0 has degree 2; eps=0: cap = 1 per color.
  EXPECT_TRUE(is_edge_split(g, {true, false}, 0.0));
  EXPECT_FALSE(is_edge_split(g, {true, true}, 0.0));
  // With eps = 0.5 the cap is 2: anything goes.
  EXPECT_TRUE(is_edge_split(g, {true, true}, 0.5));
  // Degree threshold relaxes.
  EXPECT_TRUE(is_edge_split(g, {true, true}, 0.0, 3));
}

TEST(EdgeSplit, EulerSplitIsAlwaysAValidSplit) {
  Rng rng(2);
  for (std::size_t d : {4, 7, 16}) {
    const auto g = graph::gen::random_regular(60, d, rng);
    const EdgeSplit is_red = edge_split(g, 0.1, nullptr);
    EXPECT_TRUE(is_edge_split(g, is_red, 0.1)) << "d=" << d;
  }
}

TEST(EdgeColoring, VerifierCatchesConflicts) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(is_proper_edge_coloring(g, {0, 0}));
  EXPECT_TRUE(is_proper_edge_coloring(g, {0, 1}));
}

class EdgeColoringSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(EdgeColoringSweep, ProperWithBoundedPalette) {
  const auto [n, d] = GetParam();
  Rng rng(n * d);
  const auto g = graph::gen::random_regular(n, d, rng);
  local::CostMeter meter;
  const auto result = edge_coloring_via_splitting(g, 4, &meter);
  EXPECT_TRUE(is_proper_edge_coloring(g, result.colors));
  EXPECT_LE(result.max_class_degree, 4u);
  // Total palette <= 2Δ(1+o(1)): generously, 3Δ at these sizes.
  EXPECT_LE(result.num_colors, static_cast<std::uint32_t>(3 * d));
}

INSTANTIATE_TEST_SUITE_P(Grid, EdgeColoringSweep,
                         ::testing::Values(std::make_tuple(64, 8),
                                           std::make_tuple(128, 16),
                                           std::make_tuple(128, 32),
                                           std::make_tuple(96, 48)));

TEST(EdgeColoring, NoSplittingNeededAtLowDegree) {
  Rng rng(3);
  const auto g = graph::gen::cycle(12);
  const auto result = edge_coloring_via_splitting(g, 4, nullptr);
  EXPECT_EQ(result.levels, 0u);
  EXPECT_LE(result.num_colors, 3u);  // 2d-1 with d = 2
  EXPECT_TRUE(is_proper_edge_coloring(g, result.colors));
}

TEST(EdgeColoring, HandlesEmptyAndEdgelessGraphs) {
  graph::Graph g(5);
  const auto result = edge_coloring_via_splitting(g, 4, nullptr);
  EXPECT_EQ(result.num_colors, 0u);
  EXPECT_TRUE(result.colors.empty());
}

TEST(EdgeColoring, ClassesPartitionTheEdges) {
  Rng rng(4);
  const auto g = graph::gen::random_regular(80, 12, rng);
  const auto result = edge_coloring_via_splitting(g, 3, nullptr);
  // Every edge received a color in range.
  for (std::uint32_t c : result.colors) {
    EXPECT_LT(c, result.num_colors);
  }
  EXPECT_GE(result.num_classes, 2u);
}

}  // namespace
}  // namespace ds::edgecolor
