#pragma once

/// \file determinism_probe.hpp
/// The shared cross-executor determinism probe: a program with staggered
/// halting, per-node randomness, and a mix of empty and non-empty messages —
/// sensitive to any delivery, ordering, or stale-slot bug in an executor.
/// The digest is the full per-node history. The logic exists in a
/// writer-API and a legacy vector-API flavor so the determinism suites also
/// pin the adapter. Used by tests/test_runtime.cpp (thread-parallel
/// executor) and tests/test_dist.cpp (multi-process executor) so the two
/// suites cannot drift apart.

#include <memory>
#include <vector>

#include "local/program.hpp"
#include "support/rng.hpp"

namespace ds::probes {

class ProbeBase : public local::NodeProgram {
 public:
  explicit ProbeBase(const local::NodeEnv& env)
      : env_(env), limit_(2 + env.uid % 5), state_(env.uid) {}

  [[nodiscard]] bool done() const override { return halted_; }
  [[nodiscard]] std::uint64_t digest() const { return digest_; }

 protected:
  // Some ports deliberately stay silent some rounds.
  [[nodiscard]] bool silent(std::size_t round, std::size_t p) const {
    return (env_.uid + round + p) % 3 == 0;
  }
  [[nodiscard]] std::uint64_t word(std::size_t round, std::size_t i) const {
    return i == 0 ? state_
                  : (i == 1 ? env_.uid ^ (round * 0x9E37ull) : 0);
  }
  void absorb(std::size_t p, std::uint64_t w) {
    state_ = splitmix64(state_ ^ w ^ (p * 31));
  }
  void finish_round(std::size_t round) {
    state_ ^= env_.rng.next_raw();
    digest_ = splitmix64(digest_ ^ state_ ^ round);
    if (round + 1 >= limit_) halted_ = true;
  }

  local::NodeEnv env_;

 private:
  std::size_t limit_;
  std::uint64_t state_;
  std::uint64_t digest_ = 0x1234u;
  bool halted_ = false;
};

class WriterProbe final : public ProbeBase {
 public:
  using ProbeBase::ProbeBase;

  void send(std::size_t round, local::Outbox& out) override {
    for (std::size_t p = 0; p < env_.degree; ++p) {
      if (silent(round, p)) continue;
      out.write(p, {word(round, 0), word(round, 1),
                    static_cast<std::uint64_t>(p)});
    }
  }

  void receive(std::size_t round, const local::Inbox& inbox) override {
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      for (std::uint64_t w : inbox[p]) absorb(p, w);
    }
    finish_round(round);
  }
};

class LegacyProbe final : public ProbeBase {
 public:
  using ProbeBase::ProbeBase;

  std::vector<local::Message> send_messages(std::size_t round) override {
    std::vector<local::Message> out(env_.degree);
    for (std::size_t p = 0; p < env_.degree; ++p) {
      if (silent(round, p)) continue;
      out[p] = {word(round, 0), word(round, 1),
                static_cast<std::uint64_t>(p)};
    }
    return out;
  }

  void receive_messages(std::size_t round,
                        const std::vector<local::Message>& inbox) override {
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      for (std::uint64_t w : inbox[p]) absorb(p, w);
    }
    finish_round(round);
  }
};

inline local::ProgramFactory probe_factory(bool legacy = false) {
  if (legacy) {
    return [](const local::NodeEnv& env) -> std::unique_ptr<local::NodeProgram> {
      return std::make_unique<LegacyProbe>(env);
    };
  }
  return [](const local::NodeEnv& env) -> std::unique_ptr<local::NodeProgram> {
    return std::make_unique<WriterProbe>(env);
  };
}

}  // namespace ds::probes
