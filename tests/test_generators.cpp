// Tests for the instance generators, including parameterized sweeps over
// the (n, d) grid that the experiments use.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::graph {
namespace {

TEST(Generators, GnpEdgeCountInRange) {
  Rng rng(1);
  const Graph g = gen::gnp(60, 0.2, rng);
  EXPECT_EQ(g.num_nodes(), 60u);
  // Expected edges: C(60,2)*0.2 = 354; allow wide tolerance.
  EXPECT_GT(g.num_edges(), 220u);
  EXPECT_LT(g.num_edges(), 500u);
}

TEST(Generators, GnpExtremes) {
  Rng rng(2);
  EXPECT_EQ(gen::gnp(20, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gen::gnp(20, 1.0, rng).num_edges(), 190u);
}

TEST(Generators, CycleCompleteHypercubeTree) {
  Rng rng(3);
  EXPECT_EQ(gen::cycle(7).num_edges(), 7u);
  EXPECT_EQ(girth(gen::cycle(7)), 7u);
  EXPECT_EQ(gen::complete(6).num_edges(), 15u);
  const Graph h = gen::hypercube(4);
  EXPECT_EQ(h.num_nodes(), 16u);
  EXPECT_EQ(h.min_degree(), 4u);
  EXPECT_EQ(h.max_degree(), 4u);
  EXPECT_EQ(girth(h), 4u);
  const Graph t = gen::random_tree(40, rng);
  EXPECT_EQ(t.num_edges(), 39u);
  EXPECT_TRUE(is_connected(t));
  EXPECT_EQ(girth(t), SIZE_MAX);
}

class RandomRegularSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RandomRegularSweep, ExactlyRegularAndSimple) {
  const auto [n, d] = GetParam();
  Rng rng(17 * n + d);
  const Graph g = gen::random_regular(n, d, rng);
  EXPECT_EQ(g.num_nodes(), n);
  EXPECT_EQ(g.num_edges(), n * d / 2);
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_EQ(g.degree(v), d) << "node " << v;
  }
  // Simplicity is enforced by Graph::add_edge; reaching here means no
  // duplicate/self edges were produced.
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RandomRegularSweep,
    ::testing::Values(std::make_tuple(16, 3), std::make_tuple(50, 4),
                      std::make_tuple(64, 7), std::make_tuple(128, 16),
                      std::make_tuple(200, 5), std::make_tuple(30, 29)));

TEST(Generators, RandomRegularRejectsOddProduct) {
  Rng rng(5);
  EXPECT_THROW(gen::random_regular(15, 3, rng), CheckError);
  EXPECT_THROW(gen::random_regular(10, 10, rng), CheckError);
}

TEST(Generators, HighGirthReachesTarget) {
  Rng rng(6);
  const Graph g = gen::high_girth_regular(400, 6, 5, rng);
  EXPECT_GE(girth(g), 5u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.degree(v), 6u);
  }
}

class LeftRegularSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(LeftRegularSweep, LeftDegreesExact) {
  const auto [nu, nv, delta] = GetParam();
  Rng rng(nu * 31 + delta);
  const BipartiteGraph b = gen::random_left_regular(nu, nv, delta, rng);
  EXPECT_EQ(b.num_left(), nu);
  EXPECT_EQ(b.num_right(), nv);
  for (LeftId u = 0; u < nu; ++u) {
    ASSERT_EQ(b.left_degree(u), delta);
  }
  // Neighbors of each left node are distinct (simple graph enforced).
  for (LeftId u = 0; u < nu; ++u) {
    const auto nbrs = b.left_neighbors(u);
    const std::set<RightId> unique(nbrs.begin(), nbrs.end());
    EXPECT_EQ(unique.size(), nbrs.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, LeftRegularSweep,
                         ::testing::Values(std::make_tuple(10, 40, 8),
                                           std::make_tuple(32, 64, 16),
                                           std::make_tuple(64, 64, 64),
                                           std::make_tuple(5, 100, 1)));

class BiregularSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(BiregularSweep, BothSidesBalanced) {
  const auto [nu, nv, d] = GetParam();
  Rng rng(nu + nv + d);
  const BipartiteGraph b = gen::random_biregular(nu, nv, d, rng);
  for (LeftId u = 0; u < nu; ++u) {
    ASSERT_EQ(b.left_degree(u), d);
  }
  // Right degrees balanced to within 1 of nu*d/nv.
  const std::size_t total = nu * d;
  const std::size_t lo = total / nv;
  const std::size_t hi = (total + nv - 1) / nv;
  for (RightId v = 0; v < nv; ++v) {
    ASSERT_GE(b.right_degree(v), lo);
    ASSERT_LE(b.right_degree(v), hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, BiregularSweep,
                         ::testing::Values(std::make_tuple(16, 32, 8),
                                           std::make_tuple(64, 128, 32),
                                           std::make_tuple(100, 50, 10),
                                           std::make_tuple(30, 90, 3)));

TEST(Generators, IncidenceBipartiteShape) {
  Rng rng(7);
  const Graph g = gen::random_regular(40, 5, rng);
  const BipartiteGraph b = gen::incidence_bipartite(g);
  EXPECT_EQ(b.num_left(), g.num_nodes());
  EXPECT_EQ(b.num_right(), g.num_edges());
  EXPECT_EQ(b.rank(), 2u);
  for (LeftId u = 0; u < b.num_left(); ++u) {
    EXPECT_EQ(b.left_degree(u), 5u);
  }
}

TEST(Generators, IncidenceDoublesGirth) {
  Rng rng(8);
  const Graph base = gen::cycle(7);
  const BipartiteGraph b = gen::incidence_bipartite(base);
  EXPECT_EQ(girth(b.unified()), 14u);
}

TEST(Generators, BipartiteCycleGirth) {
  const BipartiteGraph b = gen::bipartite_cycle(6);
  EXPECT_EQ(b.num_edges(), 12u);
  EXPECT_EQ(girth(b.unified()), 12u);
  EXPECT_EQ(b.min_left_degree(), 2u);
  EXPECT_EQ(b.rank(), 2u);
}

TEST(Generators, TorusIsFourRegularAndGirthFour) {
  const Graph g = gen::torus(5, 7);
  EXPECT_EQ(g.num_nodes(), 35u);
  EXPECT_EQ(g.num_edges(), 70u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.degree(v), 4u);
  }
  EXPECT_EQ(girth(g), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, TorusMinimumDimensions) {
  const Graph g = gen::torus(3, 3);
  EXPECT_EQ(g.num_nodes(), 9u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.degree(v), 4u);
  }
  EXPECT_EQ(girth(g), 3u);  // wrap-around triangles in a 3-row torus
}

TEST(Generators, ChungLuHeavyTail) {
  Rng rng(9);
  const Graph g = gen::chung_lu_power_law(600, 2.5, 6.0, rng);
  std::size_t max_deg = 0;
  double avg = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
    avg += static_cast<double>(g.degree(v));
  }
  avg /= static_cast<double>(g.num_nodes());
  // Average near the request; maximum far above it (heavy tail).
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 18.0);
  EXPECT_GT(max_deg, 3 * static_cast<std::size_t>(avg));
}

TEST(Generators, ChungLuGammaControlsSkew) {
  Rng rng(10);
  const Graph flat = gen::chung_lu_power_law(400, 6.0, 6.0, rng);
  const Graph skewed = gen::chung_lu_power_law(400, 2.2, 6.0, rng);
  auto max_degree = [](const Graph& g) {
    std::size_t m = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) m = std::max(m, g.degree(v));
    return m;
  };
  EXPECT_GT(max_degree(skewed), max_degree(flat));
}

TEST(Generators, DenseRegularComplementRegime) {
  // d > (n-1)/2 goes through the complement construction and must still be
  // exactly d-regular and simple.
  Rng rng(11);
  for (const auto& [n, d] :
       {std::make_pair(30, 29), std::make_pair(24, 17),
        std::make_pair(16, 9)}) {
    const Graph g = gen::random_regular(n, d, rng);
    EXPECT_EQ(g.num_nodes(), static_cast<std::size_t>(n));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(g.degree(v), static_cast<std::size_t>(d))
          << "n=" << n << " d=" << d;
    }
  }
}

TEST(Generators, DenseBiregularComplementRegime) {
  Rng rng(12);
  const BipartiteGraph b = gen::random_biregular(48, 512, 480, rng);
  EXPECT_EQ(b.min_left_degree(), 480u);
  EXPECT_EQ(b.max_left_degree(), 480u);
  // Right degrees balanced within 1 around 48*480/512 = 45.
  EXPECT_GE(b.min_right_degree(), 44u);
  EXPECT_LE(b.rank(), 46u);
}

TEST(Generators, BarabasiAlbertShape) {
  Rng rng(11);
  const std::size_t n = 400;
  const std::size_t m = 3;
  const Graph g = gen::barabasi_albert(n, m, rng);
  EXPECT_EQ(g.num_nodes(), n);
  // Clique on m+1 nodes plus m edges per later node.
  EXPECT_EQ(g.num_edges(), m * (m + 1) / 2 + (n - m - 1) * m);
  EXPECT_GE(g.min_degree(), m);
  // Preferential attachment concentrates degree on early nodes: the hub must
  // far exceed the attachment parameter.
  EXPECT_GT(g.max_degree(), 4 * m);
  // Simple graph: no duplicate edges.
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.u, e.v);
    EXPECT_TRUE(seen.emplace(std::min(e.u, e.v), std::max(e.u, e.v)).second);
  }
}

TEST(Generators, BarabasiAlbertRejectsBadParams) {
  Rng rng(12);
  EXPECT_THROW(gen::barabasi_albert(10, 0, rng), ds::CheckError);
  EXPECT_THROW(gen::barabasi_albert(5, 5, rng), ds::CheckError);
}

TEST(Generators, RandomGeometricMatchesBruteForce) {
  Rng rng(13);
  const double radius = 0.15;
  const Graph g = gen::random_geometric_2d(150, radius, rng);
  EXPECT_EQ(g.num_nodes(), 150u);
  // Regenerate the identical points from an identical stream and check the
  // edge set against the O(n^2) definition — validates the grid bucketing.
  Rng replay(13);
  std::vector<double> x(150);
  std::vector<double> y(150);
  for (std::size_t v = 0; v < 150; ++v) {
    x[v] = replay.next_double();
    y[v] = replay.next_double();
  }
  std::size_t expected_edges = 0;
  for (NodeId u = 0; u + 1 < 150u; ++u) {
    for (NodeId v = u + 1; v < 150u; ++v) {
      const double dx = x[u] - x[v];
      const double dy = y[u] - y[v];
      if (dx * dx + dy * dy <= radius * radius) {
        ++expected_edges;
        EXPECT_TRUE(g.has_edge(u, v)) << u << "," << v;
      }
    }
  }
  EXPECT_EQ(g.num_edges(), expected_edges);
}

TEST(Generators, RandomGeometricExtremes) {
  Rng rng(14);
  // Radius covering the whole square yields the complete graph.
  EXPECT_EQ(gen::random_geometric_2d(25, 1.5, rng).num_edges(), 300u);
  EXPECT_THROW(gen::random_geometric_2d(10, 0.0, rng), ds::CheckError);
}

}  // namespace
}  // namespace ds::graph
