// Cross-module integration tests: full pipelines composed exactly the way
// the experiments and examples use them, plus determinism/failure-injection
// checks that individual module tests cannot express.

#include <gtest/gtest.h>

#include <cmath>

#include "coloring/verify.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "multicolor/reductions.hpp"
#include "orient/sinkless.hpp"
#include "reductions/coloring_via_splitting.hpp"
#include "reductions/graph_to_bipartite.hpp"
#include "reductions/mis_via_splitting.hpp"
#include "reductions/sinkless.hpp"
#include "splitting/solver.hpp"
#include "support/rng.hpp"

#include <sstream>

namespace ds {
namespace {

TEST(Integration, DeterministicSolverIsReproducible) {
  // Same seed => identical colorings, costs, and algorithm choice.
  for (int run = 0; run < 2; ++run) {
    SCOPED_TRACE(run);
  }
  Rng rng_a(42);
  Rng rng_b(42);
  Rng gen_a(7);
  Rng gen_b(7);
  const auto b1 = graph::gen::random_biregular(64, 128, 32, gen_a);
  const auto b2 = graph::gen::random_biregular(64, 128, 32, gen_b);
  splitting::SolverOptions options;
  options.deterministic = true;
  const auto r1 = splitting::solve_weak_splitting(b1, options, rng_a);
  const auto r2 = splitting::solve_weak_splitting(b2, options, rng_b);
  EXPECT_EQ(r1.algorithm, r2.algorithm);
  EXPECT_EQ(r1.colors, r2.colors);
  EXPECT_DOUBLE_EQ(r1.meter.total_rounds(), r2.meter.total_rounds());
}

TEST(Integration, SolverCostDominatedByNamedSubstrates) {
  Rng rng(1);
  Rng gen(2);
  const auto b = graph::gen::random_biregular(48, 512, 480, gen);
  splitting::SolverOptions options;
  options.deterministic = true;
  const auto result = splitting::solve_weak_splitting(b, options, rng);
  double named = 0.0;
  for (const auto& [label, rounds] : result.meter.breakdown()) {
    EXPECT_TRUE(label == "degree-split" || label == "distance-coloring" ||
                label == "slocal-compile")
        << "unexpected cost label " << label;
    named += rounds;
  }
  EXPECT_NEAR(named, result.meter.charged_rounds(), 1e-9);
}

TEST(Integration, Figure1PipelineMatchesDirectBaseline) {
  // The reduction-based sinkless orientation and the direct randomized
  // baseline must both verify on the same graph.
  Rng rng(3);
  const auto g = graph::gen::random_regular(150, 6, rng);
  const auto via_reduction = reductions::sinkless_via_weak_splitting(g, rng);
  EXPECT_TRUE(orient::is_sinkless(g, via_reduction, 1));
  const auto direct = orient::sinkless_random_fix(g, rng, nullptr);
  EXPECT_TRUE(orient::is_sinkless(g, direct, 1));
}

TEST(Integration, SplittingChainGraphToColoring) {
  // Section 4.1's motivation end-to-end: graph -> recursive uniform
  // splitting -> proper coloring with (1+o(1))Δ-ish palette, on a graph
  // round-tripped through the serialization layer.
  Rng rng(4);
  const auto g = graph::gen::random_regular(200, 48, rng);
  std::stringstream ss;
  graph::io::write_edge_list(ss, g);
  const auto loaded = graph::io::read_edge_list(ss);
  reductions::RecursiveColoringConfig config;
  const auto result = reductions::coloring_via_splitting(loaded, config, rng);
  EXPECT_TRUE(coloring::is_proper_coloring(loaded, result.colors));
  EXPECT_LT(result.num_colors, 3u * 48u);
}

TEST(Integration, MisAndColoringAgreeOnCoverage) {
  Rng rng(5);
  const auto g = graph::gen::gnp(150, 0.1, rng);
  reductions::MisConfig mis_config;
  const auto mis = reductions::mis_via_splitting(g, mis_config, rng);
  // |MIS| >= n/(Δ+1) (Lemma 4.3).
  std::size_t size = 0;
  for (bool in : mis.in_mis) size += in;
  EXPECT_GE(size, g.num_nodes() / (g.max_degree() + 1));
}

TEST(Integration, Theorem32FeedsOnTheorem33Output) {
  // Run the iterated (C,λ) chain, then verify its output qualifies as the
  // proper-on-B'^2 schedule the Theorem 3.2 reduction builds internally:
  // heavy left nodes must see >= 2 log n distinct colors.
  Rng rng(6);
  const std::size_t nu = 40;
  const std::size_t nv = 220;
  const auto b = graph::gen::random_left_regular(nu, nv, 170, rng);
  const auto chain = multicolor::iterated_cl_multicolor(b, 16, 0.3, 2.0, rng);
  EXPECT_TRUE(chain.achieves_weak_multicolor);
  const double log_n = std::log2(static_cast<double>(b.num_nodes()));
  const auto want = static_cast<std::size_t>(std::ceil(2.0 * log_n));
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    if (b.left_degree(u) < chain.heavy_threshold) continue;
    EXPECT_GE(multicolor::distinct_colors_seen(b, chain.colors, u), want);
  }
}

TEST(Integration, DoubledGraphSolvedByShattering) {
  // General-graph splitting via doubling + randomized solver; exercises
  // normalization (left degrees vary on G(n,p)) and component solving.
  Rng rng(7);
  const auto g = graph::gen::random_regular(256, 10, rng);
  const auto b = reductions::graph_to_bipartite(g);
  splitting::SolverOptions options;
  options.deterministic = false;
  const auto result = splitting::solve_weak_splitting(b, options, rng);
  EXPECT_TRUE(reductions::is_graph_weak_splitting(g, result.colors));
}

TEST(Integration, FailureInjectionCorruptedColoringCaught) {
  // Verifiers must catch single-node corruption of otherwise valid outputs.
  Rng rng(8);
  const auto b = graph::gen::random_biregular(64, 96, 24, rng);
  splitting::SolverOptions options;
  options.deterministic = true;
  auto result = splitting::solve_weak_splitting(b, options, rng);
  ASSERT_TRUE(splitting::is_weak_splitting(b, result.colors));
  // Find a constraint with exactly one red neighbor and flip it.
  bool injected = false;
  for (graph::LeftId u = 0; u < b.num_left() && !injected; ++u) {
    std::vector<graph::RightId> reds;
    for (graph::RightId v : b.left_neighbors(u)) {
      if (result.colors[v] == splitting::Color::kRed) reds.push_back(v);
    }
    if (reds.size() == 1) {
      result.colors[reds[0]] = splitting::Color::kBlue;
      injected = true;
    }
  }
  if (injected) {
    EXPECT_FALSE(splitting::is_weak_splitting(b, result.colors));
  }
}

TEST(Integration, AdversarialIdsDoNotBreakFigure1) {
  // The Figure 1 construction must be valid for any distinct ID assignment;
  // exercise the degree-adversarial one.
  Rng rng(9);
  const auto g = graph::gen::gnp(80, 0.2, rng);
  if (g.min_degree() >= 5) {
    const auto orientation = reductions::sinkless_via_weak_splitting(g, rng);
    EXPECT_TRUE(orient::is_sinkless(g, orientation, 1));
  }
  // Direct instance check with permuted ids.
  Rng id_rng(10);
  const auto perm = id_rng.permutation(g.num_nodes());
  std::vector<std::uint64_t> ids(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = perm[v];
  const auto b = reductions::build_sinkless_instance(g, ids);
  EXPECT_LE(b.rank(), 2u);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    EXPECT_GE(2 * b.left_degree(u), g.degree(u));
  }
}

}  // namespace
}  // namespace ds
