// Tests for defective colorings via iterated uniform splitting (the
// footnote-2 relaxation and the divide step of Section 4.1).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "defective/defective_coloring.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace ds::defective {
namespace {

TEST(Verifier, ExactDefectBoundary) {
  // Triangle, all same color: every node has defect 2.
  const auto g = graph::gen::complete(3);
  const std::vector<std::uint32_t> mono{0, 0, 0};
  EXPECT_TRUE(is_defective_coloring(g, mono, 2));
  EXPECT_FALSE(is_defective_coloring(g, mono, 1));
  // Proper coloring has defect 0.
  EXPECT_TRUE(is_defective_coloring(g, {0, 1, 2}, 0));
}

TEST(Verifier, ProfileReportsPerColorDefects) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const std::vector<std::uint32_t> colors{0, 0, 1, 2};
  const auto profile = defect_profile(g, colors);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0], 1u);  // 0-1 monochromatic
  EXPECT_EQ(profile[1], 0u);
  EXPECT_EQ(profile[2], 0u);
}

TEST(Ladder, ZeroLevelsIsTheTrivialColoring) {
  Rng rng(1);
  const auto g = graph::gen::random_regular(40, 6, rng);
  const auto result = defective_coloring(g, 0, 0.1, 0, rng);
  EXPECT_EQ(result.num_colors, 1u);
  EXPECT_EQ(result.max_defect, 6u);
}

class LadderSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(LadderSweep, DefectHalvesPerLevel) {
  const auto [d, levels] = GetParam();
  Rng rng(d * 31 + levels);
  const auto g = graph::gen::random_regular(256, d, rng);
  const auto result = defective_coloring(g, levels, 0.1, 0, rng);
  EXPECT_EQ(result.num_colors, 1u << levels);
  // Defect <= d * ((1+2eps)/2)^levels plus additive slack per level.
  const double bound =
      static_cast<double>(d) * std::pow(0.6, static_cast<double>(levels)) +
      2.0 * static_cast<double>(levels) + 2.0;
  EXPECT_LE(static_cast<double>(result.max_defect), bound)
      << "d=" << d << " levels=" << levels;
  EXPECT_TRUE(is_defective_coloring(g, result.colors, result.max_defect));
}

INSTANTIATE_TEST_SUITE_P(DegreeByLevels, LadderSweep,
                         ::testing::Values(std::make_tuple(16, 1),
                                           std::make_tuple(16, 2),
                                           std::make_tuple(32, 3),
                                           std::make_tuple(64, 4),
                                           std::make_tuple(64, 2)));

TEST(Ladder, DegreeThresholdLeavesLowDegreeNodesUnconstrained) {
  // A star: the center is high degree, leaves are degree 1. With a degree
  // threshold above 1, leaf defects are unconstrained but the center's
  // same-color count must still drop.
  graph::Graph g(33);
  for (graph::NodeId leaf = 1; leaf < 33; ++leaf) g.add_edge(0, leaf);
  Rng rng(5);
  const auto result = defective_coloring(g, 1, 0.1, 2, rng);
  std::size_t center_same = 0;
  for (graph::NodeId leaf = 1; leaf < 33; ++leaf) {
    if (result.colors[leaf] == result.colors[0]) ++center_same;
  }
  EXPECT_LE(center_same, 20u);  // about half of 32, plus slack
}

TEST(Ladder, ChargesSplittingCosts) {
  Rng rng(6);
  const auto g = graph::gen::random_regular(128, 16, rng);
  local::CostMeter meter;
  defective_coloring(g, 2, 0.1, 0, rng, &meter);
  EXPECT_GT(meter.total_rounds(), 0.0);
}

TEST(Ladder, FootnoteTwoRelationDefectiveIsWeakerThanSplitting) {
  // Any valid uniform splitting induces a 2-coloring whose defect is at
  // most (1/2+eps)*d — i.e. splitting implies defective, not vice versa.
  Rng rng(7);
  const auto g = graph::gen::random_regular(200, 32, rng);
  const auto result = defective_coloring(g, 1, 0.1, 0, rng);
  EXPECT_TRUE(is_defective_coloring(
      g, result.colors,
      static_cast<std::size_t>(std::ceil(0.6 * 32) + 1)));
}

}  // namespace
}  // namespace ds::defective
