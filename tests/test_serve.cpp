// Tests for the serving subsystem (src/serve/): the request/response codec
// (round-trip + garbage rejection), the bounded request queue's
// never-blocking backpressure, the per-topology-digest partition cache,
// and the resident daemon end to end on loopback fleets — sequential and
// concurrent submissions bit-identical to one-shot execution over one
// standing rendezvous, graceful-shutdown drain, and a dead follower
// flipping the fleet unhealthy instead of hanging clients.

#include <gtest/gtest.h>

#include <signal.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algo/registry.hpp"
#include "graph/generators.hpp"
#include "local/ids.hpp"
#include "local/topology.hpp"
#include "net/loopback.hpp"
#include "net/rendezvous.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/partition_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/request_queue.hpp"
#include "support/check.hpp"

namespace ds::serve {
namespace {

// ---- Codec ---------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTrip) {
  Request req;
  req.id = 42;
  req.algo = "mis";
  req.seed = 7;
  req.params = {{"max-rounds", "500"}, {"ids", "random"}};
  const std::vector<std::uint64_t> words = encode_request(req);
  const Request back = decode_request(words.data(), words.size());
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.algo, "mis");
  EXPECT_EQ(back.seed, 7u);
  EXPECT_EQ(back.params, req.params);
}

TEST(ServeProtocol, ResponseRoundTrip) {
  Response resp;
  resp.id = 9;
  resp.status = Status::kOk;
  resp.output_digest = 0xdeadbeefcafef00dull;
  resp.rounds = 13;
  resp.wall_us = 250000;
  resp.brief = "mis: mis-size=5 verified=yes";
  const std::vector<std::uint64_t> words = encode_response(resp);
  const Response back = decode_response(words.data(), words.size());
  EXPECT_EQ(back.id, 9u);
  EXPECT_EQ(back.status, Status::kOk);
  EXPECT_EQ(back.output_digest, 0xdeadbeefcafef00dull);
  EXPECT_EQ(back.rounds, 13u);
  EXPECT_EQ(back.wall_us, 250000u);
  EXPECT_EQ(back.brief, resp.brief);
}

TEST(ServeProtocol, MalformedPayloadsAreRejected) {
  Request req;
  req.id = 1;
  req.algo = "color";
  req.params = {{"eps", "0.25"}};
  std::vector<std::uint64_t> words = encode_request(req);

  // Empty and truncated payloads.
  EXPECT_THROW(decode_request(words.data(), 0), ds::CheckError);
  EXPECT_THROW(decode_request(words.data(), 2), ds::CheckError);
  EXPECT_THROW(decode_request(words.data(), words.size() - 1), ds::CheckError);

  // A version the codec does not speak.
  std::vector<std::uint64_t> wrong = words;
  wrong[0] = kServeProtocolVersion + 1;
  EXPECT_THROW(decode_request(wrong.data(), wrong.size()), ds::CheckError);

  // A parameter count pointing past the payload.
  std::vector<std::uint64_t> lying = words;
  lying[3] = 1000;
  EXPECT_THROW(decode_request(lying.data(), lying.size()), ds::CheckError);

  // The response decoder survives the same abuse.
  Response resp;
  resp.brief = "ok";
  std::vector<std::uint64_t> rwords = encode_response(resp);
  EXPECT_THROW(decode_response(rwords.data(), 0), ds::CheckError);
  EXPECT_THROW(decode_response(rwords.data(), rwords.size() - 1),
               ds::CheckError);
  rwords[0] = kServeProtocolVersion + 5;
  EXPECT_THROW(decode_response(rwords.data(), rwords.size()), ds::CheckError);
}

TEST(ServeProtocol, ParamsDigestFingerprintsOverrides) {
  const std::uint64_t none = params_digest({});
  const std::uint64_t eps = params_digest({{"eps", "0.1"}});
  const std::uint64_t eps2 = params_digest({{"eps", "0.2"}});
  EXPECT_NE(none, eps);
  EXPECT_NE(eps, eps2);
  EXPECT_EQ(eps, params_digest({{"eps", "0.1"}}));
}

// ---- Request queue -------------------------------------------------------

TEST(RequestQueue, BackpressureRefusesWithoutBlocking) {
  RequestQueue q(2);
  PendingRequest a;
  a.request.id = 1;
  PendingRequest b;
  b.request.id = 2;
  EXPECT_TRUE(q.try_push(std::move(a)));
  EXPECT_TRUE(q.try_push(std::move(b)));
  EXPECT_EQ(q.depth(), 2u);

  // The refusal must be immediate — try_push never waits for room.
  PendingRequest c;
  c.request.id = 3;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.try_push(std::move(c)));
  const double refused_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(refused_s, 0.1);
  EXPECT_EQ(q.rejected(), 1u);

  // FIFO order, and room reopens after a pop.
  PendingRequest out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out.request.id, 1u);
  PendingRequest d;
  d.request.id = 4;
  EXPECT_TRUE(q.try_push(std::move(d)));

  // close(): no further pushes, but the queued entries stay poppable (the
  // shutdown drain relies on exactly this).
  q.close();
  PendingRequest e;
  EXPECT_FALSE(q.try_push(std::move(e)));
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out.request.id, 2u);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out.request.id, 4u);
  EXPECT_FALSE(q.try_pop(out));
  EXPECT_FALSE(q.pop_wait(out, 10));
}

// ---- Partition cache -----------------------------------------------------

TEST(PartitionCache, HitsAndMissesByTopologyDigest) {
  Rng rng(3);
  const graph::Graph g = graph::gen::gnp(30, 0.2, rng);
  const local::NetworkTopology seed1(g, local::IdStrategy::kSequential, 1);
  const local::NetworkTopology seed2(g, local::IdStrategy::kRandomPermutation,
                                     2);
  const std::uint64_t d1 = net::topology_digest(seed1);
  const std::uint64_t d2 = net::topology_digest(seed2);
  ASSERT_NE(d1, d2);

  PartitionCache cache(8);
  std::size_t builds = 0;
  const auto build1 = [&] {
    ++builds;
    return dist::Partition(seed1, 2);
  };
  const auto build2 = [&] {
    ++builds;
    return dist::Partition(seed2, 2);
  };

  const auto p1 = cache.get_or_build(d1, build1);
  EXPECT_EQ(builds, 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  // A repeated digest returns the identical object without rebuilding.
  const auto p1b = cache.get_or_build(d1, build1);
  EXPECT_EQ(builds, 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(p1.get(), p1b.get());

  // A new digest is a miss.
  const auto p2 = cache.get_or_build(d2, build2);
  EXPECT_EQ(builds, 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_NE(p1.get(), p2.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PartitionCache, EvictsLeastRecentlyUsedPastCapacity) {
  Rng rng(4);
  const graph::Graph g = graph::gen::gnp(20, 0.2, rng);
  const local::NetworkTopology topo(g, local::IdStrategy::kSequential, 1);
  PartitionCache cache(2);
  std::size_t builds = 0;
  const auto build = [&] {
    ++builds;
    return dist::Partition(topo, 2);
  };
  // Keys are arbitrary digests: the cache never inspects the partitions.
  (void)cache.get_or_build(101, build);
  (void)cache.get_or_build(102, build);
  (void)cache.get_or_build(101, build);  // refresh 101: 102 is now LRU
  (void)cache.get_or_build(103, build);  // evicts 102
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(builds, 3u);
  (void)cache.get_or_build(101, build);  // still resident
  EXPECT_EQ(builds, 3u);
  (void)cache.get_or_build(102, build);  // evicted: rebuilt
  EXPECT_EQ(builds, 4u);
}

// ---- Daemon --------------------------------------------------------------

// The sequential reference digest the served runs must match bit-for-bit.
std::uint64_t one_shot_digest(const graph::Graph& g, const std::string& name,
                              std::uint64_t seed) {
  const algo::Spec& spec = algo::find(name);
  algo::RunContext ctx;
  ctx.graph = &g;
  ctx.seed = seed;
  ctx.params = algo::Params::parse(spec.params, {});
  ctx.sequential_runtime = true;
  return algo::execute(spec, ctx).output_digest();
}

Request make_request(std::uint64_t id, const std::string& algo,
                     std::uint64_t seed) {
  Request req;
  req.id = id;
  req.algo = algo;
  req.seed = seed;
  return req;
}

DaemonConfig daemon_config(net::LoopbackRank&& lr, const graph::Graph& g) {
  DaemonConfig config;
  config.rank = lr.rank;
  config.hosts = std::move(lr.hosts);
  config.listen = std::move(lr.listen);
  config.graph = &g;
  config.idle_poll_ms = 50;
  return config;
}

TEST(ServeDaemon, ServesSequentialAndConcurrentSubmissionsBitIdentically) {
  Rng rng(11);
  const graph::Graph g = graph::gen::gnp(40, 0.15, rng);
  // mis@7 and color@7 share a topology digest (it covers structure, id
  // strategy and seed — not the algorithm), mis@9 does not: 6 requests
  // must come to exactly 2 partition builds.
  const std::uint64_t mis7 = one_shot_digest(g, "mis", 7);
  const std::uint64_t color7 = one_shot_digest(g, "color", 7);
  const std::uint64_t mis9 = one_shot_digest(g, "mis", 9);

  const net::LoopbackReport report = net::run_loopback_ranks(
      2, [&](net::LoopbackRank&& lr) -> int {
        const std::size_t rank = lr.rank;
        Daemon daemon(daemon_config(std::move(lr), g));
        if (rank != 0) return daemon.run();

        int run_code = -1;
        std::thread runner([&] { run_code = daemon.run(); });
        ClientConfig client;
        client.port = daemon.request_port();
        client.timeout_ms = 60000;

        int rc = 0;
        const auto check = [&](const Response& resp, std::uint64_t id,
                               std::uint64_t digest, int fail_code) {
          if (rc != 0) return;
          if (resp.status != Status::kOk || resp.id != id ||
              resp.output_digest != digest) {
            rc = fail_code;
          }
        };
        // Three sequential submissions over the one standing fleet.
        check(submit(client, make_request(1, "mis", 7)), 1, mis7, 10);
        check(submit(client, make_request(2, "color", 7)), 2, color7, 11);
        check(submit(client, make_request(3, "mis", 9)), 3, mis9, 12);

        // Three concurrent ones: the queue serializes them onto the fleet,
        // every digest still matches the one-shot reference.
        std::vector<Response> concurrent(3);
        {
          std::vector<std::thread> clients;
          const std::vector<std::pair<std::string, std::uint64_t>> jobs = {
              {"mis", 7}, {"color", 7}, {"mis", 9}};
          for (std::size_t i = 0; i < jobs.size(); ++i) {
            clients.emplace_back([&, i] {
              concurrent[i] = submit(
                  client, make_request(4 + i, jobs[i].first, jobs[i].second));
            });
          }
          for (std::thread& t : clients) t.join();
        }
        check(concurrent[0], 4, mis7, 13);
        check(concurrent[1], 5, color7, 14);
        check(concurrent[2], 6, mis9, 15);

        // An invalid submission is answered kError without touching the
        // fleet (and therefore without breaking it).
        const Response bad = submit(client, make_request(7, "no-such", 1));
        if (rc == 0 && bad.status != Status::kError) rc = 16;
        if (rc == 0 && bad.brief.find("unknown algorithm") == std::string::npos)
          rc = 17;

        daemon.request_shutdown();
        runner.join();
        if (rc != 0) return rc;
        if (run_code != 0) return 18;
        const Daemon::Stats stats = daemon.stats();
        if (stats.served != 6) return 19;
        if (stats.failed != 1) return 20;
        if (stats.cache_misses != 2) return 21;
        if (stats.cache_hits != 4) return 22;
        if (!daemon.fleet_ok()) return 23;
        return 0;
      });
  EXPECT_TRUE(report.all_ok())
      << "rank0=" << report.rank0 << " peers=["
      << (report.peer_exit_codes.empty() ? -1 : report.peer_exit_codes[0])
      << "]";
}

TEST(ServeDaemon, MixedObservabilityFleetServesRepeatedRequestsSafely) {
  // Only rank 0 observes (the --http-port deployment shape). The pre-round
  // observability agreement then makes the non-observing follower install a
  // *per-request* fleet recorder and hand its counter handles to the
  // standing transport; regression coverage for the use-after-free where
  // those handles outlived the request and the next dispatch wrote through
  // them (ServeNetwork::run must unhook the transport's recorder on every
  // exit path). Three sequential requests make the follower's transport
  // await dispatches twice after a per-request recorder died.
  Rng rng(23);
  const graph::Graph g = graph::gen::gnp(32, 0.18, rng);
  const std::uint64_t mis7 = one_shot_digest(g, "mis", 7);
  const std::uint64_t color7 = one_shot_digest(g, "color", 7);
  const std::uint64_t mis9 = one_shot_digest(g, "mis", 9);

  const net::LoopbackReport report = net::run_loopback_ranks(
      2, [&](net::LoopbackRank&& lr) -> int {
        const std::size_t rank = lr.rank;
        obs::Recorder recorder;  // rank 0 only; followers stay bare
        DaemonConfig config = daemon_config(std::move(lr), g);
        if (rank == 0) config.recorder = &recorder;
        Daemon daemon(std::move(config));
        if (rank != 0) return daemon.run();

        int run_code = -1;
        std::thread runner([&] { run_code = daemon.run(); });
        ClientConfig client;
        client.port = daemon.request_port();
        client.timeout_ms = 60000;

        int rc = 0;
        const auto check = [&](const Response& resp, std::uint64_t id,
                               std::uint64_t digest, int fail_code) {
          if (rc != 0) return;
          if (resp.status != Status::kOk || resp.id != id ||
              resp.output_digest != digest) {
            rc = fail_code;
          }
        };
        check(submit(client, make_request(1, "mis", 7)), 1, mis7, 10);
        check(submit(client, make_request(2, "color", 7)), 2, color7, 11);
        check(submit(client, make_request(3, "mis", 9)), 3, mis9, 12);

        daemon.request_shutdown();
        runner.join();
        if (rc != 0) return rc;
        if (run_code != 0) return 13;
        if (daemon.stats().served != 3) return 14;
        if (!daemon.fleet_ok()) return 15;
        // The observing rank's recorder saw every served request.
        for (const obs::MetricSnapshot& m : recorder.metrics().snapshot()) {
          if (m.name == "serve.requests") return m.sum == 3 ? 0 : 16;
        }
        return 17;  // serve.requests never registered
      });
  EXPECT_TRUE(report.all_ok())
      << "rank0=" << report.rank0 << " peers=["
      << (report.peer_exit_codes.empty() ? -1 : report.peer_exit_codes[0])
      << "]";
}

TEST(ServeDaemon, GracefulShutdownAnswersEveryClientAndExitsZero) {
  Rng rng(5);
  const graph::Graph g = graph::gen::gnp(30, 0.2, rng);
  // A single-rank fleet (dispatch short-circuits) keeps the whole drain
  // in-process and deterministic to assert on.
  net::Socket listen = net::listen_on(net::Endpoint{"127.0.0.1", 0});
  const net::Endpoint self = net::local_endpoint(listen.fd());

  std::atomic<bool> stop{false};
  DaemonConfig config;
  config.rank = 0;
  config.hosts = {self};
  config.listen = std::move(listen);
  config.graph = &g;
  config.idle_poll_ms = 20;
  config.stop_requested = [&] { return stop.load(); };
  Daemon daemon(std::move(config));

  int run_code = -1;
  std::thread runner([&] { run_code = daemon.run(); });
  ClientConfig client;
  client.port = daemon.request_port();
  client.timeout_ms = 60000;

  // One request served while healthy...
  const Response first = submit(client, make_request(1, "mis", 3));
  ASSERT_EQ(first.status, Status::kOk);
  EXPECT_EQ(first.output_digest, one_shot_digest(g, "mis", 3));

  // ...then a burst racing the shutdown latch: every client must still get
  // a terminal answer — kOk if its request was accepted before the drain,
  // kRejected("daemon is draining") after — and the daemon must exit 0.
  std::vector<Response> burst(4);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    clients.emplace_back(
        [&, i] { burst[i] = submit(client, make_request(10 + i, "mis", 3)); });
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  runner.join();
  EXPECT_EQ(run_code, 0);

  std::uint64_t ok = 0;
  for (const Response& resp : burst) {
    if (resp.status == Status::kOk) {
      ++ok;
      EXPECT_EQ(resp.output_digest, one_shot_digest(g, "mis", 3));
    } else {
      ASSERT_EQ(resp.status, Status::kRejected);
      EXPECT_NE(resp.brief.find("draining"), std::string::npos) << resp.brief;
    }
  }
  EXPECT_EQ(daemon.stats().served, ok + 1);

  // Submissions after exit fail to connect at all — the port is gone.
  ClientConfig late = client;
  late.timeout_ms = 2000;
  EXPECT_THROW(submit(late, make_request(99, "mis", 3)), std::exception);
}

TEST(ServeDaemon, DeadFollowerFlipsFleetUnhealthyInsteadOfHanging) {
  Rng rng(6);
  const graph::Graph g = graph::gen::gnp(30, 0.2, rng);
  std::vector<pid_t> children;
  const auto t0 = std::chrono::steady_clock::now();
  const net::LoopbackReport report = net::run_loopback_ranks(
      2,
      [&](net::LoopbackRank&& lr) -> int {
        const std::size_t rank = lr.rank;
        Daemon daemon(daemon_config(std::move(lr), g));
        if (rank != 0) return daemon.run();  // idles until SIGKILLed

        int run_code = -1;
        std::thread runner([&] { run_code = daemon.run(); });
        // The fleet is up (the ctor rendezvoused); now kill the follower
        // while the daemon is *idle* — the liveness probe, not a round
        // timeout, must notice.
        if (children.size() == 1) ::kill(children[0], SIGKILL);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(20);
        while (daemon.fleet_ok() &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        const bool noticed = !daemon.fleet_ok();

        // A submission against the broken fleet is answered, not hung.
        ClientConfig client;
        client.port = daemon.request_port();
        client.timeout_ms = 30000;
        const Response resp = submit(client, make_request(1, "mis", 3));

        daemon.request_shutdown();
        runner.join();
        if (!noticed) return 10;
        if (resp.status != Status::kRejected) return 11;
        if (resp.brief.find("unhealthy") == std::string::npos) return 12;
        if (run_code != 0) return 13;
        return 0;
      },
      [&](const std::vector<pid_t>& pids) { children = pids; });
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(report.rank0, 0);
  ASSERT_EQ(report.peer_exit_codes.size(), 1u);
  EXPECT_EQ(report.peer_exit_codes[0], 128 + SIGKILL);
  EXPECT_LT(elapsed, 30.0);
}

}  // namespace
}  // namespace ds::serve
