// Tests for the headline algorithms: Theorem 2.5 (deterministic), Theorem
// 2.7 (δ >= 6r), and the solver facade.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "splitting/delta6r.hpp"
#include "splitting/deterministic.hpp"
#include "splitting/solver.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::splitting {
namespace {

class Theorem25Sweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(Theorem25Sweep, ValidOnBiregularGrid) {
  const auto [nu, nv, delta] = GetParam();
  Rng rng(nu + 7 * delta);
  const auto b = graph::gen::random_biregular(nu, nv, delta, rng);
  ASSERT_GE(static_cast<double>(b.min_left_degree()),
            2.0 * std::log2(static_cast<double>(b.num_nodes())));
  local::CostMeter meter;
  DeterministicInfo info;
  const Coloring colors = deterministic_weak_split(b, rng, &meter, &info);
  EXPECT_TRUE(is_weak_splitting(b, colors));
  EXPECT_GT(meter.total_rounds(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem25Sweep,
    ::testing::Values(std::make_tuple(64, 128, 32),
                      std::make_tuple(128, 64, 24),
                      std::make_tuple(32, 512, 64),
                      std::make_tuple(256, 256, 20)));

TEST(Theorem25, HighDegreeTriggersDrrPhase) {
  Rng rng(1);
  // δ = 512 > 48·log2(n): the DRR-I phase must run and shrink the rank.
  const auto b = graph::gen::random_biregular(32, 64, 512 / 16, rng);
  // Build a denser instance explicitly: 64 left nodes, degree 512 needs
  // nv >= 512.
  const auto big = graph::gen::random_biregular(48, 512, 480, rng);
  ASSERT_GT(static_cast<double>(big.min_left_degree()),
            48.0 * std::log2(static_cast<double>(big.num_nodes())));
  local::CostMeter meter;
  DeterministicInfo info;
  const Coloring colors = deterministic_weak_split(big, rng, &meter, &info);
  EXPECT_TRUE(is_weak_splitting(big, colors));
  EXPECT_GE(info.drr_iterations, 1u);
  EXPECT_LT(info.reduced_rank, big.rank());
  // The reduced instance must still satisfy Lemma 2.2's precondition.
  EXPECT_GE(static_cast<double>(info.reduced_min_degree),
            2.0 * std::log2(static_cast<double>(big.num_nodes())));
  (void)b;
}

TEST(Theorem25, RejectsLowDegreeInstances) {
  Rng rng(2);
  const auto b = graph::gen::random_left_regular(64, 128, 4, rng);
  EXPECT_THROW(deterministic_weak_split(b, rng), ds::CheckError);
}

class Theorem27Sweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(Theorem27Sweep, RankOneEndgameWorks) {
  const auto [r_target, randomized] = GetParam();
  Rng rng(5 * r_target + randomized);
  // Build an instance with rank ~ r_target and δ >= 6r: nu left nodes of
  // degree 6·r_target+4 into nv right nodes.
  const std::size_t delta = 6 * r_target + 4;
  const std::size_t nu = 24;
  const std::size_t nv = nu * delta / r_target;
  const auto b = graph::gen::random_biregular(nu, nv, delta, rng);
  ASSERT_GE(b.min_left_degree(), 6 * b.rank());
  local::CostMeter meter;
  Delta6rInfo info;
  const Coloring colors = delta6r_split(b, randomized, rng, &meter, &info);
  EXPECT_TRUE(is_weak_splitting(b, colors));
  if (!info.used_trivial_path) {
    EXPECT_EQ(info.final_rank, 1u);
    EXPECT_GE(info.final_min_degree, 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, Theorem27Sweep,
                         ::testing::Values(std::make_tuple(1, false),
                                           std::make_tuple(2, false),
                                           std::make_tuple(2, true),
                                           std::make_tuple(4, false),
                                           std::make_tuple(8, true)));

TEST(Theorem27, RequiresDeltaSixR) {
  Rng rng(3);
  const auto b = graph::gen::random_biregular(32, 32, 8, rng);  // r = 8 = δ
  EXPECT_THROW(delta6r_split(b, false, rng), ds::CheckError);
}

TEST(Theorem27, HighDegreeShortcut) {
  Rng rng(4);
  // δ = 40 >= 2 log2 n and rank small: the shortcut path runs.
  const auto b = graph::gen::random_biregular(16, 320, 40, rng);
  ASSERT_GE(b.min_left_degree(), 6 * b.rank());
  Delta6rInfo info;
  const Coloring colors = delta6r_split(b, false, rng, nullptr, &info);
  EXPECT_TRUE(is_weak_splitting(b, colors));
  EXPECT_TRUE(info.used_trivial_path);
}

TEST(Solver, PicksTrivialForRandomizedHighDegree) {
  Rng rng(5);
  const auto b = graph::gen::random_left_regular(32, 64, 30, rng);
  SolverOptions options;
  options.deterministic = false;
  const SolveResult result = solve_weak_splitting(b, options, rng);
  EXPECT_EQ(result.algorithm, Algorithm::kTrivialRandom);
  EXPECT_TRUE(is_weak_splitting(b, result.colors));
}

TEST(Solver, PicksDelta6r) {
  Rng rng(6);
  const auto b = graph::gen::random_biregular(64, 600, 13, rng);
  ASSERT_GE(b.min_left_degree(), 6 * b.rank());
  SolverOptions options;
  options.deterministic = true;
  const SolveResult result = solve_weak_splitting(b, options, rng);
  EXPECT_EQ(result.algorithm, Algorithm::kDelta6r);
}

TEST(Solver, PicksDeterministicTheorem25) {
  Rng rng(7);
  const auto b = graph::gen::random_biregular(64, 128, 32, rng);
  SolverOptions options;
  options.deterministic = true;
  const SolveResult result = solve_weak_splitting(b, options, rng);
  // δ = 32 < 6r here, δ >= 2 log n: Theorem 2.5 applies.
  ASSERT_LT(b.min_left_degree(), 6 * b.rank());
  EXPECT_EQ(result.algorithm, Algorithm::kDeterministic);
}

TEST(Solver, PicksShatteringForLowDegreeRandomized) {
  Rng rng(8);
  const auto b = graph::gen::random_biregular(512, 1024, 12, rng);
  SolverOptions options;
  options.deterministic = false;
  const SolveResult result = solve_weak_splitting(b, options, rng);
  EXPECT_EQ(result.algorithm, Algorithm::kShattering);
  EXPECT_TRUE(is_weak_splitting(b, result.colors));
}

TEST(Solver, PicksHighGirthForHighGirthInstances) {
  Rng rng(9);
  // Incidence instances have rank 2, so delta must sit in [8, 12): at least
  // 8 for the solver's high-girth regime, below 12 = 6r so the delta >= 6r
  // branch does not fire first.
  const auto base = graph::gen::high_girth_regular(700, 8, 5, rng);
  const auto b = graph::gen::incidence_bipartite(base);
  SolverOptions options;
  options.deterministic = true;
  options.girth_hint = 10;
  const SolveResult result = solve_weak_splitting(b, options, rng);
  EXPECT_EQ(result.algorithm, Algorithm::kHighGirthDet);
  EXPECT_TRUE(is_weak_splitting(b, result.colors));
}

TEST(Solver, FallbackCanBeDisabled) {
  Rng rng(10);
  // δ = 3, rank moderate, deterministic: outside every regime.
  const auto b = graph::gen::random_left_regular(16, 16, 3, rng);
  SolverOptions options;
  options.deterministic = true;
  options.allow_fallback = false;
  EXPECT_THROW(solve_weak_splitting(b, options, rng), ds::CheckError);
  options.allow_fallback = true;
  const SolveResult result = solve_weak_splitting(b, options, rng);
  EXPECT_EQ(result.algorithm, Algorithm::kRobustFallback);
  EXPECT_TRUE(is_weak_splitting(b, result.colors));
}

TEST(Solver, AlgorithmNamesAreDistinct) {
  EXPECT_NE(algorithm_name(Algorithm::kTrivialRandom),
            algorithm_name(Algorithm::kDelta6r));
  EXPECT_NE(algorithm_name(Algorithm::kDeterministic),
            algorithm_name(Algorithm::kShattering));
}

}  // namespace
}  // namespace ds::splitting
