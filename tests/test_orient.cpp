// Tests for the orientation substrate: Euler partition, directed degree
// splitting (the Theorem 2.3 contract), and sinkless orientation.

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "graph/multigraph.hpp"
#include "orient/degree_split.hpp"
#include "orient/euler.hpp"
#include "orient/sinkless.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::orient {
namespace {

graph::Multigraph random_multigraph(std::size_t n, std::size_t m,
                                    std::uint64_t seed) {
  Rng rng(seed);
  graph::Multigraph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    const auto a = static_cast<graph::NodeId>(rng.next_index(n));
    const auto b = static_cast<graph::NodeId>(rng.next_index(n));
    g.add_edge(a, b);
  }
  return g;
}

TEST(Euler, PartitionCoversEveryEdgeOnce) {
  const auto g = random_multigraph(20, 60, 1);
  const auto trails = euler_partition(g);
  std::vector<int> covered(g.num_edges(), 0);
  for (const Trail& t : trails) {
    for (graph::EdgeId e : t.edges) ++covered[e];
  }
  for (int c : covered) EXPECT_EQ(c, 1);
}

TEST(Euler, TrailsAreWalkable) {
  const auto g = random_multigraph(15, 40, 2);
  for (const Trail& t : euler_partition(g)) {
    graph::NodeId at = t.start;
    for (graph::EdgeId e : t.edges) {
      const graph::Edge ep = g.endpoints(e);
      ASSERT_TRUE(ep.u == at || ep.v == at) << "trail breaks at edge " << e;
      at = g.other_endpoint(e, at);
    }
    if (t.closed) {
      EXPECT_EQ(at, t.start);
    }
  }
}

TEST(Euler, OrientationDiscrepancyAtMostOne) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto g = random_multigraph(25, 80 + 5 * seed, seed);
    const graph::Orientation orient = euler_orientation(g);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const std::size_t disc = graph::orientation_discrepancy(g, orient, v);
      if (g.degree(v) % 2 == 0) {
        EXPECT_EQ(disc, 0u) << "even node " << v << " seed " << seed;
      } else {
        EXPECT_LE(disc, 1u) << "odd node " << v << " seed " << seed;
      }
    }
  }
}

TEST(Euler, StarOrientationDiscrepancyRegression) {
  // Regression: phase 1 must not start several open trails at the same odd
  // node — on a star that would orient every edge out of the center and
  // give it discrepancy d instead of 1.
  for (std::size_t d : {3, 5, 7, 11, 21}) {
    graph::Multigraph g(d + 1);
    for (graph::NodeId leaf = 1; leaf <= d; ++leaf) g.add_edge(0, leaf);
    const graph::Orientation orient = euler_orientation(g);
    EXPECT_LE(graph::orientation_discrepancy(g, orient, 0), 1u) << "d=" << d;
  }
}

TEST(Euler, AlternatingBicoloringDiscrepancyAtMostThree) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto g = random_multigraph(25, 80 + 5 * seed, seed);
    const auto is_red = alternating_bicoloring(g);
    EXPECT_LE(bicoloring_discrepancy(g, is_red), 3u) << "seed " << seed;
  }
}

TEST(Euler, AlternatingBicoloringOnStar) {
  graph::Multigraph g(10);
  for (graph::NodeId leaf = 1; leaf <= 9; ++leaf) g.add_edge(0, leaf);
  const auto is_red = alternating_bicoloring(g);
  EXPECT_LE(bicoloring_discrepancy(g, is_red), 3u);
}

TEST(Euler, AlternatingBicoloringAlternatesAlongTrails) {
  const auto g = random_multigraph(15, 50, 4);
  const auto is_red = alternating_bicoloring(g);
  // Recompute the partition (deterministic) and check strict alternation.
  for (const Trail& t : euler_partition(g)) {
    for (std::size_t i = 1; i < t.edges.size(); ++i) {
      EXPECT_NE(is_red[t.edges[i - 1]], is_red[t.edges[i]]);
    }
  }
}

TEST(Euler, EvenCycleOrientsPerfectly) {
  graph::Multigraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const graph::Orientation orient = euler_orientation(g);
  for (graph::NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(graph::orientation_discrepancy(g, orient, v), 0u);
  }
}

TEST(Euler, HandlesSelfLoopsAndParallelEdges) {
  graph::Multigraph g(2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  const auto trails = euler_partition(g);
  std::size_t total = 0;
  for (const Trail& t : trails) total += t.edges.size();
  EXPECT_EQ(total, 4u);
  const graph::Orientation orient = euler_orientation(g);
  EXPECT_EQ(graph::orientation_discrepancy(g, orient, 0), 0u);
  EXPECT_EQ(graph::orientation_discrepancy(g, orient, 1), 0u);
}

class DegreeSplitContract
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DegreeSplitContract, EulerMeetsTheoremContract) {
  const auto [n, m] = GetParam();
  const auto g = random_multigraph(n, m, n + m);
  Rng rng(7);
  SplitConfig config;
  config.eps = 0.1;
  local::CostMeter meter;
  const graph::Orientation orient = degree_split(g, config, rng, &meter);
  EXPECT_TRUE(satisfies_split_contract(g, orient, config.eps));
  EXPECT_LE(max_discrepancy(g, orient), 1u);
  EXPECT_GT(meter.breakdown().at("degree-split"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, DegreeSplitContract,
                         ::testing::Values(std::make_tuple(10, 30),
                                           std::make_tuple(50, 200),
                                           std::make_tuple(100, 1000),
                                           std::make_tuple(8, 8)));

TEST(DegreeSplit, RandomBaselineChargesNothing) {
  const auto g = random_multigraph(40, 200, 3);
  Rng rng(8);
  SplitConfig config;
  config.method = SplitMethod::kRandomBaseline;
  local::CostMeter meter;
  const graph::Orientation orient = degree_split(g, config, rng, &meter);
  EXPECT_EQ(orient.toward_v.size(), g.num_edges());
  EXPECT_DOUBLE_EQ(meter.charged_rounds(), 0.0);
}

TEST(DegreeSplit, RandomizedCostBelowDeterministic) {
  const auto g = random_multigraph(64, 256, 4);
  Rng rng(9);
  SplitConfig det;
  det.eps = 0.05;
  SplitConfig rnd = det;
  rnd.randomized = true;
  local::CostMeter meter_det;
  local::CostMeter meter_rnd;
  degree_split(g, det, rng, &meter_det);
  degree_split(g, rnd, rng, &meter_rnd);
  EXPECT_LT(meter_rnd.charged_rounds(), meter_det.charged_rounds());
}

TEST(Sinkless, VerifierDetectsSinks) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  // Both edges point at node 1: nodes 0 and 2 are sinks.
  EXPECT_FALSE(is_sinkless(g, {true, false}, 1));
  // Path orientation 0 -> 1 -> 2: node 2 is a sink.
  EXPECT_FALSE(is_sinkless(g, {true, true}, 1));
  // With min_degree 2 only node 1 is constrained; 0->1->2 gives it outdeg 1.
  EXPECT_TRUE(is_sinkless(g, {true, true}, 2));
}

TEST(Sinkless, RandomFixConvergesOnRegularGraphs) {
  Rng rng(10);
  const graph::Graph g = graph::gen::random_regular(100, 5, rng);
  local::CostMeter meter;
  const auto orientation = sinkless_random_fix(g, rng, &meter);
  EXPECT_TRUE(is_sinkless(g, orientation, 1));
  EXPECT_GT(meter.executed_rounds(), 0u);
}

TEST(Sinkless, ProgramProducesSinklessOrientations) {
  Rng rng(12);
  for (std::size_t d : {3, 5, 8}) {
    const graph::Graph g = graph::gen::random_regular(120, d, rng);
    local::CostMeter meter;
    const auto outcome = sinkless_program(g, 5, 1, &meter);
    EXPECT_TRUE(is_sinkless(g, outcome.toward_v, 1)) << "d=" << d;
    EXPECT_EQ(meter.executed_rounds(), outcome.executed_rounds);
    EXPECT_GE(outcome.trials, 1u);
  }
}

TEST(Sinkless, ProgramRespectsMinDegreeThreshold) {
  // A star: leaves have degree 1 and are unconstrained at min_degree 2;
  // the center must still get an outgoing edge.
  graph::Graph g(6);
  for (graph::NodeId leaf = 1; leaf < 6; ++leaf) g.add_edge(0, leaf);
  const auto outcome = sinkless_program(g, 3, 2);
  EXPECT_TRUE(is_sinkless(g, outcome.toward_v, 2));
}

TEST(Sinkless, ProgramHandlesEdgelessGraphs) {
  graph::Graph g(4);
  const auto outcome = sinkless_program(g, 1, 1);
  EXPECT_TRUE(outcome.toward_v.empty());
}

TEST(Sinkless, ProgramRoundsAreLogarithmicInPractice) {
  for (std::size_t n : {64, 256, 1024}) {
    Rng rng(n);
    const graph::Graph g = graph::gen::random_regular(n, 4, rng);
    const auto outcome = sinkless_program(g, 7, 1);
    // One trial of budget 4*log2(n)+16 usually suffices at degree >= 3.
    EXPECT_LE(outcome.trials, 3u) << "n=" << n;
  }
}

TEST(Sinkless, RandomFixOnCycleEventuallyConverges) {
  // Degree 2 is the hardest feasible case; the fix loop must still finish.
  Rng rng(11);
  const graph::Graph g = graph::gen::cycle(16);
  const auto orientation = sinkless_random_fix(g, rng, nullptr, 100000);
  EXPECT_TRUE(is_sinkless(g, orientation, 1));
}

}  // namespace
}  // namespace ds::orient
