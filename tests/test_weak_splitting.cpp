// Tests for the weak splitting problem definition, verifier, trivial
// randomized algorithm, basic derandomization (Lemma 2.1), truncation
// (Lemma 2.2), and the message-passing coin + local-repair program behind
// the algorithm registry.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "splitting/basic_derand.hpp"
#include "splitting/splitting_program.hpp"
#include "splitting/trivial_random.hpp"
#include "splitting/truncate.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::splitting {
namespace {

graph::BipartiteGraph two_constraints() {
  // u0 ~ {v0, v1}, u1 ~ {v1, v2}.
  graph::BipartiteGraph b(2, 3);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  b.add_edge(1, 1);
  b.add_edge(1, 2);
  return b;
}

TEST(Verifier, AcceptsAndRejects) {
  const auto b = two_constraints();
  EXPECT_TRUE(is_weak_splitting(
      b, {Color::kRed, Color::kBlue, Color::kRed}));
  EXPECT_FALSE(is_weak_splitting(
      b, {Color::kRed, Color::kRed, Color::kBlue}));  // u0 all red
  EXPECT_FALSE(is_weak_splitting(
      b, {Color::kBlue, Color::kBlue, Color::kBlue}));
}

TEST(Verifier, DegreeThresholdRelaxes) {
  const auto b = two_constraints();
  // All red violates both constraints, but with min_degree = 3 nothing is
  // constrained.
  const Coloring all_red(3, Color::kRed);
  EXPECT_FALSE(is_weak_splitting(b, all_red, 0));
  EXPECT_TRUE(is_weak_splitting(b, all_red, 3));
}

TEST(Verifier, ReportsUnsatisfiedNodes) {
  const auto b = two_constraints();
  const auto bad =
      unsatisfied_nodes(b, {Color::kRed, Color::kRed, Color::kBlue});
  EXPECT_EQ(bad, (std::vector<graph::LeftId>{0}));
}

TEST(Verifier, CheckMessagesAreSpecific) {
  const auto b = two_constraints();
  EXPECT_NE(check_weak_splitting(b, {Color::kRed, Color::kRed, Color::kRed})
                .find("does not see both colors"),
            std::string::npos);
  EXPECT_NE(
      check_weak_splitting(b, {Color::kUncolored, Color::kRed, Color::kBlue})
          .find("uncolored"),
      std::string::npos);
  EXPECT_EQ(check_weak_splitting(b, {Color::kRed, Color::kBlue, Color::kRed}),
            "");
}

TEST(TrivialRandom, SucceedsAtHighDegreeWhp) {
  Rng rng(1);
  // δ = 24 >= 2 log2(n) for n = 72+: failure bound 72·2^{-23} tiny.
  const auto b = graph::gen::random_left_regular(24, 48, 24, rng);
  EXPECT_LT(trivial_failure_bound(b), 0.01);
  int failures = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Coloring colors = trivial_random_split(b, rng);
    if (!is_weak_splitting(b, colors)) ++failures;
  }
  EXPECT_EQ(failures, 0);
}

TEST(TrivialRandom, FailureBoundFormula) {
  const auto b = two_constraints();  // two constraints of degree 2
  EXPECT_DOUBLE_EQ(trivial_failure_bound(b), 2.0 * std::pow(2.0, -1.0));
}

TEST(BasicDerand, Lemma21ProducesValidSplitting) {
  Rng rng(2);
  // n = 192, 2 log2 n ≈ 15.2; δ = 16 qualifies.
  const auto b = graph::gen::random_left_regular(64, 128, 16, rng);
  local::CostMeter meter;
  BasicDerandInfo info;
  const Coloring colors = basic_derand_split(b, rng, &meter, &info);
  EXPECT_TRUE(is_weak_splitting(b, colors));
  EXPECT_LT(info.initial_potential, 1.0);
  EXPECT_DOUBLE_EQ(info.final_potential, 0.0);
  EXPECT_GT(info.schedule_colors, 0u);
  // Costs include the B² coloring and the O(C) schedule.
  EXPECT_GT(meter.breakdown().at("distance-coloring"), 0.0);
  EXPECT_GT(meter.breakdown().at("slocal-compile"), 0.0);
}

TEST(BasicDerand, WorksOnRankTwoInstances) {
  Rng rng(3);
  const auto base = graph::gen::random_regular(64, 16, rng);
  const auto b = graph::gen::incidence_bipartite(base);
  local::CostMeter meter;
  const Coloring colors = basic_derand_split(b, rng, &meter);
  EXPECT_TRUE(is_weak_splitting(b, colors));
}

TEST(Truncate, KeepsExactlyTargetEdges) {
  Rng rng(4);
  const auto b = graph::gen::random_left_regular(16, 64, 32, rng);
  const auto t = truncate_left_degrees(b, 10);
  for (graph::LeftId u = 0; u < t.num_left(); ++u) {
    EXPECT_EQ(t.left_degree(u), 10u);
  }
  EXPECT_LE(t.rank(), b.rank());
}

TEST(Truncate, ShortDegreesUntouched) {
  const auto b = two_constraints();
  const auto t = truncate_left_degrees(b, 5);
  EXPECT_EQ(t.num_edges(), b.num_edges());
}

TEST(Truncate, Lemma22EndToEnd) {
  Rng rng(5);
  // Large degree: truncation must still give a valid splitting of the
  // *original* graph.
  const auto b = graph::gen::random_left_regular(32, 256, 128, rng);
  local::CostMeter meter;
  BasicDerandInfo info;
  const Coloring colors = truncated_split(b, rng, &meter, &info);
  EXPECT_TRUE(is_weak_splitting(b, colors));
  EXPECT_LT(info.initial_potential, 1.0);
}

TEST(RobustSolve, HandlesTinyInstances) {
  Rng rng(6);
  const auto b = two_constraints();
  const Coloring colors = robust_component_solve(b, rng);
  EXPECT_TRUE(is_weak_splitting(b, colors));
}

TEST(RobustSolve, ThrowsOnUnsolvableDegreeOne) {
  graph::BipartiteGraph b(1, 1);
  b.add_edge(0, 0);  // a constrained left node of degree 1
  Rng rng(7);
  EXPECT_THROW(robust_component_solve(b, rng), ds::CheckError);
}

TEST(RobustSolve, RespectsDegreeThreshold) {
  graph::BipartiteGraph b(2, 3);
  b.add_edge(0, 0);  // u0 has degree 1 -> unconstrained at threshold 2
  b.add_edge(1, 1);
  b.add_edge(1, 2);
  Rng rng(8);
  const Coloring colors = robust_component_solve(b, rng, 2);
  EXPECT_TRUE(is_weak_splitting(b, colors, 2));
}

class TrivialSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrivialSweep, FailureRateTracksUnionBound) {
  // Property sweep: empirical failure rate of the 0-round algorithm is
  // bounded by (and of the same order as) Σ_u 2^{1-deg}.
  const std::size_t delta = GetParam();
  Rng rng(100 + delta);
  const auto b = graph::gen::random_left_regular(32, 64, delta, rng);
  const double bound = trivial_failure_bound(b);
  int failures = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    if (!is_weak_splitting(b, trivial_random_split(b, rng))) ++failures;
  }
  const double rate = static_cast<double>(failures) / trials;
  // Empirical rate must not exceed the union bound by more than noise.
  EXPECT_LE(rate, std::min(1.0, bound) + 0.08) << "delta=" << delta;
}

INSTANTIATE_TEST_SUITE_P(DegreeGrid, TrivialSweep,
                         ::testing::Values(2, 4, 8, 16, 24));

// ---- Message-passing program (registry port) -----------------------------

TEST(Program, SplitsBiregularInstances) {
  Rng rng(31);
  for (const std::size_t delta : {4, 6, 8}) {
    const auto b = graph::gen::random_biregular(32, 64, delta, rng);
    const auto outcome = weak_splitting_program(b, 7);
    EXPECT_TRUE(is_weak_splitting(b, outcome.colors, 2)) << delta;
    EXPECT_GE(outcome.trials, 1u);
    for (const Color c : outcome.colors) {
      EXPECT_NE(c, Color::kUncolored);
    }
  }
}

TEST(Program, MinDegreeRelaxationIsHonored) {
  // u0 ~ {v0}: degree 1 can never see both colors; with min_degree 2 the
  // program must still satisfy the remaining constraints.
  graph::BipartiteGraph b(2, 3);
  b.add_edge(0, 0);
  b.add_edge(1, 0);
  b.add_edge(1, 1);
  b.add_edge(1, 2);
  const auto outcome = weak_splitting_program(b, 5, /*min_degree=*/2);
  EXPECT_TRUE(is_weak_splitting(b, outcome.colors, 2));
  EXPECT_FALSE(is_weak_splitting(b, outcome.colors, 0));
}

TEST(Program, StrictDefinitionOnDegreeOneInstanceExhaustsTrials) {
  // Under min_degree = 0 a degree-1 constraint is unsatisfiable, so every
  // Las Vegas trial fails and the driver throws (small budget keeps the
  // test fast).
  graph::BipartiteGraph b(1, 1);
  b.add_edge(0, 0);
  EXPECT_THROW(weak_splitting_program(b, 5, /*min_degree=*/0, nullptr,
                                      /*max_trials=*/2),
               ds::CheckError);
}

TEST(Program, DeterministicAcrossRepeats) {
  Rng rng(32);
  const auto b = graph::gen::random_biregular(24, 48, 6, rng);
  const auto x = weak_splitting_program(b, 9);
  const auto y = weak_splitting_program(b, 9);
  EXPECT_EQ(x.colors, y.colors);
  EXPECT_EQ(x.executed_rounds, y.executed_rounds);
  EXPECT_EQ(x.trials, y.trials);
}

}  // namespace
}  // namespace ds::splitting
