// Tests for the shattering-based randomized algorithm (Section 2.4):
// phase semantics, Lemma 2.9's failure probability shape, residual
// structure, and the Theorem 1.2 end-to-end pipeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "splitting/shattering.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::splitting {
namespace {

TEST(ShatteringPhase, ColorFractionsMatchDesign) {
  Rng rng(1);
  const auto b = graph::gen::random_biregular(256, 2048, 64, rng);
  // With δ = 64 and nearly uniform degrees, almost no node triggers the
  // uncoloring rule, so color fractions stay near 1/4, 1/4, 1/2.
  const ShatterOutcome outcome = shattering_phase(b, rng);
  std::size_t red = 0;
  std::size_t blue = 0;
  for (Color c : outcome.partial) {
    red += c == Color::kRed;
    blue += c == Color::kBlue;
  }
  const double n = static_cast<double>(b.num_right());
  EXPECT_NEAR(red / n, 0.25, 0.05);
  EXPECT_NEAR(blue / n, 0.25, 0.05);
}

TEST(ShatteringPhase, UncoloringGuaranteesQuarterUncolored) {
  Rng rng(2);
  const auto b = graph::gen::random_biregular(128, 256, 16, rng);
  const ShatterOutcome outcome = shattering_phase(b, rng);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    std::size_t uncolored = 0;
    for (graph::RightId v : b.left_neighbors(u)) {
      if (outcome.partial[v] == Color::kUncolored) ++uncolored;
    }
    // Every u ends with at least ceil(deg/4) uncolored neighbors: either it
    // uncolored everything, or at most 3/4 were colored.
    EXPECT_GE(4 * uncolored, b.left_degree(u)) << "u=" << u;
  }
}

TEST(ShatteringPhase, UnsatisfiedFlagMatchesDefinition) {
  Rng rng(3);
  const auto b = graph::gen::random_biregular(64, 128, 8, rng);
  const ShatterOutcome outcome = shattering_phase(b, rng);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    bool red = false;
    bool blue = false;
    for (graph::RightId v : b.left_neighbors(u)) {
      red = red || outcome.partial[v] == Color::kRed;
      blue = blue || outcome.partial[v] == Color::kBlue;
    }
    EXPECT_EQ(outcome.unsatisfied[u], !(red && blue));
  }
}

TEST(ShatteringPhase, CostsTwoRounds) {
  Rng rng(4);
  const auto b = graph::gen::random_biregular(32, 64, 8, rng);
  local::CostMeter meter;
  shattering_phase(b, rng, &meter);
  EXPECT_EQ(meter.executed_rounds(), 2u);
}

TEST(Lemma29, UnsatisfiedRateDecaysWithDegree) {
  // Monte-Carlo check of the e^{-ηΔ} shape: the empirical unsatisfied rate
  // must drop by at least 4x when the degree doubles from 16 to 32.
  Rng rng(5);
  auto rate = [&](std::size_t delta) {
    const auto b = graph::gen::random_biregular(512, 1024, delta, rng);
    std::size_t unsat = 0;
    std::size_t total = 0;
    for (int trial = 0; trial < 10; ++trial) {
      const ShatterOutcome outcome = shattering_phase(b, rng);
      unsat += static_cast<std::size_t>(std::count(
          outcome.unsatisfied.begin(), outcome.unsatisfied.end(), true));
      total += b.num_left();
    }
    return static_cast<double>(unsat) / static_cast<double>(total);
  };
  const double rate16 = rate(16);
  const double rate32 = rate(32);
  EXPECT_LT(rate32, rate16 / 4.0 + 0.002);
}

TEST(Lemma29, BoundFormulaDecays) {
  const double b32 = shattering_unsatisfied_bound(32, 4);
  const double b64 = shattering_unsatisfied_bound(64, 4);
  const double b128 = shattering_unsatisfied_bound(128, 4);
  EXPECT_LT(b64, b32);
  EXPECT_LT(b128, b64);
  EXPECT_LT(b128 / b64, b64 / b32 + 1e-9);  // at least geometric decay
}

TEST(Theorem12, EndToEndOnLowDegree) {
  Rng rng(6);
  const auto b = graph::gen::random_biregular(512, 1024, 10, rng);
  local::CostMeter meter;
  ShatteringStats stats;
  const Coloring colors = randomized_weak_split(b, rng, &meter, &stats);
  EXPECT_TRUE(is_weak_splitting(b, colors));
  EXPECT_FALSE(stats.used_trivial);
  EXPECT_EQ(meter.executed_rounds() >= 2, true);
}

TEST(Theorem12, TrivialShortcutAtHighDegree) {
  Rng rng(7);
  const auto b = graph::gen::random_biregular(64, 128, 32, rng);
  ShatteringStats stats;
  const Coloring colors = randomized_weak_split(b, rng, nullptr, &stats);
  EXPECT_TRUE(is_weak_splitting(b, colors));
  EXPECT_TRUE(stats.used_trivial);
}

TEST(Theorem12, NormalizesSkewedDegrees) {
  Rng rng(8);
  // Mix: most left nodes have degree 8, a few have degree 64 (> 2δ).
  graph::BipartiteGraph b(0, 256);
  for (std::size_t i = 0; i < 64; ++i) {
    const auto u = b.add_left_node();
    Rng pick = rng.fork(i);
    const std::size_t degree = i < 8 ? 64 : 8;
    std::vector<graph::RightId> pool(256);
    for (graph::RightId v = 0; v < 256; ++v) pool[v] = v;
    pick.shuffle(pool);
    for (std::size_t j = 0; j < degree; ++j) b.add_edge(u, pool[j]);
  }
  ShatteringStats stats;
  const Coloring colors = randomized_weak_split(b, rng, nullptr, &stats);
  EXPECT_TRUE(is_weak_splitting(b, colors));
  EXPECT_TRUE(stats.normalized);
}

TEST(Theorem12, RequiresMinimumDegree) {
  Rng rng(9);
  const auto b = graph::gen::random_left_regular(16, 32, 4, rng);
  EXPECT_THROW(randomized_weak_split(b, rng), ds::CheckError);
}

TEST(Theorem12, ResidualComponentsShrinkWithDegree) {
  // Shape check on Theorem 2.8: larger δ leaves (weakly) smaller residual
  // components. Averaged over trials to tame variance.
  Rng rng(10);
  auto largest = [&](std::size_t delta) {
    double total = 0;
    for (int trial = 0; trial < 5; ++trial) {
      const auto b = graph::gen::random_biregular(512, 1024, delta, rng);
      ShatteringStats stats;
      randomized_weak_split(b, rng, nullptr, &stats);
      total += static_cast<double>(stats.largest_component);
    }
    return total / 5.0;
  };
  const double big = largest(10);
  const double small = largest(20);
  EXPECT_LE(small, big + 1.0);
}

}  // namespace
}  // namespace ds::splitting
