// Tests for Section 3: multicolor splitting definitions, verifiers,
// randomized/derandomized algorithms, and both completeness reductions.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "multicolor/multicolor_splitting.hpp"
#include "multicolor/random_algorithms.hpp"
#include "multicolor/reductions.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::multicolor {
namespace {

TEST(Verifiers, DistinctColorsAndLoads) {
  graph::BipartiteGraph b(1, 4);
  for (graph::RightId v = 0; v < 4; ++v) b.add_edge(0, v);
  const ColorAssignment colors{0, 0, 1, 2};
  EXPECT_EQ(distinct_colors_seen(b, colors, 0), 3u);
  EXPECT_EQ(max_color_load(b, colors, 0), 2u);
}

TEST(Verifiers, MulticolorSplittingCaps) {
  graph::BipartiteGraph b(1, 4);
  for (graph::RightId v = 0; v < 4; ++v) b.add_edge(0, v);
  // lambda = 0.5, deg = 4: cap = 2 per color.
  EXPECT_TRUE(is_multicolor_splitting(b, {0, 0, 1, 1}, 2, 0.5));
  EXPECT_FALSE(is_multicolor_splitting(b, {0, 0, 0, 1}, 2, 0.5));
  EXPECT_NE(check_multicolor_splitting(b, {0, 0, 0, 1}, 2, 0.5).find("cap"),
            std::string::npos);
  // Out-of-palette colors rejected.
  EXPECT_FALSE(is_multicolor_splitting(b, {0, 0, 5, 1}, 2, 0.9));
  // Degree threshold relaxes.
  EXPECT_TRUE(is_multicolor_splitting(b, {0, 0, 0, 1}, 2, 0.5, 5));
}

TEST(Verifiers, WeakMulticolor) {
  graph::BipartiteGraph b(1, 4);
  for (graph::RightId v = 0; v < 4; ++v) b.add_edge(0, v);
  EXPECT_TRUE(is_weak_multicolor_splitting(b, {0, 1, 2, 0}, 4, 3, 0));
  EXPECT_FALSE(is_weak_multicolor_splitting(b, {0, 1, 0, 1}, 4, 3, 0));
  EXPECT_TRUE(is_weak_multicolor_splitting(b, {0, 1, 0, 1}, 4, 3, 5));
}

TEST(Params, StandardParameterFormulas) {
  const auto p = weak_multicolor_params(1024);
  EXPECT_EQ(p.required_colors, 20u);  // 2·log2(1024)
  EXPECT_EQ(p.num_colors, 20u);
  // 2·(10+1)·ln(1024) = 22·6.93 ≈ 152.5 -> 153.
  EXPECT_EQ(p.degree_threshold, 153u);
}

TEST(RandomUniform, ZeroRoundBaselineShape) {
  Rng rng(1);
  const auto b = graph::gen::random_left_regular(32, 128, 64, rng);
  const ColorAssignment colors = random_uniform_colors(b, 8, rng);
  for (std::uint32_t c : colors) EXPECT_LT(c, 8u);
  // With degree 64 and 8 colors, each u should see most colors.
  std::size_t total_seen = 0;
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    total_seen += distinct_colors_seen(b, colors, u);
  }
  EXPECT_GT(total_seen, 32u * 6u);
}

TEST(DerandWeakMulticolor, CoversAllColorsInTheoremRegime) {
  Rng rng(2);
  const std::size_t nu = 48;
  const std::size_t nv = 256;
  const auto params = weak_multicolor_params(nu + nv);
  // Twice the threshold degree puts the union-bound potential safely
  // below 1 (the threshold itself is the asymptotic edge of the regime).
  const auto b = graph::gen::random_left_regular(
      nu, nv, 2 * params.degree_threshold, rng);
  local::CostMeter meter;
  MulticolorDerandInfo info;
  const ColorAssignment colors =
      derand_weak_multicolor(b, params.num_colors, rng, &meter, &info);
  EXPECT_TRUE(is_weak_multicolor_splitting(b, colors, params.num_colors,
                                           params.required_colors,
                                           params.degree_threshold));
  EXPECT_LT(info.initial_potential, 1.0);
  EXPECT_NEAR(info.final_potential, 0.0, 1e-12);
}

TEST(ClPalette, MatchesTheoremChoice) {
  EXPECT_EQ(cl_palette(16, 0.7), 3u);   // lambda >= 2/3 -> 3 colors
  EXPECT_EQ(cl_palette(16, 0.5), 6u);   // ceil(3/0.5)
  EXPECT_EQ(cl_palette(16, 0.25), 12u);
  EXPECT_EQ(cl_palette(4, 0.1), 4u);    // capped at C
  EXPECT_EQ(cl_palette(2, 0.95), 2u);
}

TEST(DerandClMulticolor, RespectsLoadCaps) {
  Rng rng(3);
  const auto b = graph::gen::random_left_regular(40, 160, 80, rng);
  local::CostMeter meter;
  MulticolorDerandInfo info;
  const double lambda = 0.4;
  const std::uint32_t C = 16;
  const ColorAssignment colors =
      derand_cl_multicolor(b, C, lambda, rng, &meter, &info);
  EXPECT_TRUE(is_multicolor_splitting(b, colors, cl_palette(C, lambda),
                                      lambda));
  EXPECT_LT(info.initial_potential, 1.0);
}

TEST(Theorem32Reduction, SolvesWeakSplittingThroughMulticolor) {
  Rng rng(4);
  const std::size_t nu = 48;
  const std::size_t nv = 384;
  const auto params = weak_multicolor_params(nu + nv);
  const auto b = graph::gen::random_left_regular(
      nu, nv, params.degree_threshold + 8, rng);
  local::CostMeter meter;
  WeakViaMulticolorInfo info;
  const splitting::Coloring colors =
      weak_splitting_via_multicolor(b, rng, &meter, &info);
  EXPECT_TRUE(splitting::is_weak_splitting(b, colors));
  EXPECT_EQ(info.multicolor_palette, params.num_colors);
  EXPECT_EQ(info.pruned_degree, params.required_colors);
  EXPECT_LT(info.weak_potential, 1.0);
}

TEST(Theorem32Reduction, RejectsThinInstances) {
  Rng rng(5);
  const auto b = graph::gen::random_left_regular(16, 32, 8, rng);
  EXPECT_THROW(weak_splitting_via_multicolor(b, rng), ds::CheckError);
}

TEST(Theorem33Reduction, IteratedChainReachesTargetLoad) {
  Rng rng(6);
  const std::size_t nu = 48;
  const std::size_t nv = 256;
  const auto b = graph::gen::random_left_regular(nu, nv, 160, rng);
  local::CostMeter meter;
  const IteratedCLResult result =
      iterated_cl_multicolor(b, 16, 0.3, 2.0, rng, &meter);
  EXPECT_GE(result.iterations, 2u);
  EXPECT_GT(result.num_colors, 1u);
  // Heavy nodes see many colors (the weak multicolor target).
  EXPECT_TRUE(result.achieves_weak_multicolor);
  // The iterated load cap: max load is far below the degree.
  EXPECT_LT(result.max_load, 160u / 4u);
}

TEST(Theorem33Reduction, SingleShotWhenLambdaAlreadySmall) {
  Rng rng(7);
  const auto b = graph::gen::random_left_regular(32, 256, 128, rng);
  const double log_n = std::log2(static_cast<double>(b.num_nodes()));
  const double small_lambda = 1.0 / (4.0 * log_n);
  const IteratedCLResult result =
      iterated_cl_multicolor(b, 64, small_lambda, 2.0, rng, nullptr);
  EXPECT_EQ(result.iterations, 1u);
}

}  // namespace
}  // namespace ds::multicolor
