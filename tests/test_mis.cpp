// Tests for the MIS module: Luby's randomized MIS on the LOCAL simulator
// and the sequential greedy baselines.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "coloring/reduce.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mis/mis.hpp"
#include "support/rng.hpp"

namespace ds::mis {
namespace {

TEST(Luby, ValidOnEmptyAndSingleton) {
  graph::Graph empty(0);
  EXPECT_TRUE(luby(empty, 1).in_mis.empty());
  graph::Graph one(1);
  const auto outcome = luby(one, 1);
  EXPECT_TRUE(outcome.in_mis[0]);
}

TEST(Luby, IsolatedNodesAllJoin) {
  graph::Graph g(7);  // no edges
  const auto outcome = luby(g, 3);
  for (graph::NodeId v = 0; v < 7; ++v) EXPECT_TRUE(outcome.in_mis[v]);
  EXPECT_LE(outcome.phases, 1u);
}

TEST(Luby, CompleteGraphPicksExactlyOne) {
  const auto g = graph::gen::complete(25);
  const auto outcome = luby(g, 5);
  std::size_t count = 0;
  for (bool b : outcome.in_mis) count += b ? 1 : 0;
  EXPECT_EQ(count, 1u);
}

class LubySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(LubySweep, ProducesValidMisOnGnp) {
  const auto [n, p] = GetParam();
  Rng rng(n);
  const auto g = graph::gen::gnp(n, p, rng);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    local::CostMeter meter;
    const auto outcome = luby(g, seed, &meter);
    EXPECT_TRUE(coloring::is_mis(g, outcome.in_mis));
    EXPECT_EQ(meter.executed_rounds(), outcome.executed_rounds);
  }
}

INSTANTIATE_TEST_SUITE_P(Gnp, LubySweep,
                         ::testing::Values(std::make_tuple(50, 0.05),
                                           std::make_tuple(100, 0.1),
                                           std::make_tuple(200, 0.02),
                                           std::make_tuple(300, 0.3)));

TEST(Luby, PhasesAreLogarithmicInPractice) {
  // O(log n) w.h.p.; allow a generous constant.
  for (std::size_t n : {64, 256, 1024}) {
    Rng rng(n + 1);
    const auto g = graph::gen::random_regular(n, 8, rng);
    const auto outcome = luby(g, 7);
    EXPECT_LE(outcome.phases,
              8 * static_cast<std::size_t>(std::log2(n)) + 8)
        << "n=" << n;
  }
}

TEST(Luby, DifferentSeedsUsuallyDiffer) {
  Rng rng(4);
  const auto g = graph::gen::random_regular(128, 6, rng);
  const auto a = luby(g, 1).in_mis;
  const auto b = luby(g, 2).in_mis;
  EXPECT_NE(a, b);  // astronomically unlikely to coincide
}

TEST(Greedy, ByOrderRespectsOrder) {
  // Path 0-1-2: processing 1 first yields {1}; processing ends first {0,2}.
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto mid_first = greedy_by_order(g, {1, 0, 2});
  EXPECT_TRUE(mid_first[1]);
  EXPECT_FALSE(mid_first[0]);
  const auto ends_first = greedy_by_order(g, {0, 2, 1});
  EXPECT_TRUE(ends_first[0]);
  EXPECT_TRUE(ends_first[2]);
  EXPECT_FALSE(ends_first[1]);
}

TEST(Greedy, ByIdsMatchesManualOrder) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  // ids reverse the natural order.
  const auto by_ids = greedy_by_ids(g, {40, 30, 20, 10});
  const auto by_order = greedy_by_order(g, {3, 2, 1, 0});
  EXPECT_EQ(by_ids, by_order);
}

TEST(Greedy, EveryPermutationOfSmallGraphIsValid) {
  Rng rng(9);
  const auto g = graph::gen::gnp(9, 0.3, rng);
  std::vector<std::size_t> order(9);
  std::iota(order.begin(), order.end(), 0);
  for (int trial = 0; trial < 50; ++trial) {
    rng.shuffle(order);
    EXPECT_TRUE(coloring::is_mis(g, greedy_by_order(g, order)));
  }
}

TEST(Greedy, SizeAtLeastNOverDeltaPlusOne) {
  // Lemma 4.3 of the paper: any MIS has size >= n/(Δ+1).
  Rng rng(11);
  const auto g = graph::gen::random_regular(120, 5, rng);
  const auto in_mis = greedy_by_ids(g, std::vector<std::uint64_t>(
                                           [&] {
                                             std::vector<std::uint64_t> v(120);
                                             std::iota(v.begin(), v.end(), 0);
                                             return v;
                                           }()));
  std::size_t size = 0;
  for (bool b : in_mis) size += b ? 1 : 0;
  EXPECT_GE(size, 120u / 6u);
}

}  // namespace
}  // namespace ds::mis
