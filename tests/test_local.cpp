// Tests for the LOCAL-model simulator: cost accounting, ID assignment,
// synchronous message passing semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "local/cost.hpp"
#include "local/ids.hpp"
#include "local/network.hpp"
#include "support/check.hpp"

namespace ds::local {
namespace {

TEST(CostMeter, AccumulatesAndMerges) {
  CostMeter a;
  a.add_executed(3);
  a.charge("x", 10.0);
  CostMeter b;
  b.add_executed(5);
  b.charge("x", 2.0);
  b.charge("y", 7.0);

  CostMeter seq = a;
  seq.merge_sequential(b);
  EXPECT_EQ(seq.executed_rounds(), 8u);
  EXPECT_DOUBLE_EQ(seq.charged_rounds(), 19.0);
  EXPECT_DOUBLE_EQ(seq.breakdown().at("x"), 12.0);

  CostMeter par = a;
  par.merge_parallel_max(b);
  EXPECT_EQ(par.executed_rounds(), 5u);
  // Totals take the max of the meters: max(10, 2+7) = 10.
  EXPECT_DOUBLE_EQ(par.charged_rounds(), 10.0);
  EXPECT_DOUBLE_EQ(par.breakdown().at("x"), 10.0);
  EXPECT_DOUBLE_EQ(par.total_rounds(), 15.0);
}

TEST(CostMeter, NegativeChargeRejected) {
  CostMeter m;
  EXPECT_THROW(m.charge("bad", -1.0), ds::CheckError);
}

TEST(Cost, DegreeSplittingCostShapes) {
  // Deterministic cost grows with log n; randomized with log log n.
  const double det_small = degree_splitting_cost_det(0.1, 1 << 10);
  const double det_big = degree_splitting_cost_det(0.1, 1 << 20);
  EXPECT_NEAR(det_big / det_small, 2.0, 0.01);
  const double rand_small = degree_splitting_cost_rand(0.1, 1 << 10);
  const double rand_big = degree_splitting_cost_rand(0.1, 1 << 20);
  EXPECT_LT(rand_big / rand_small, 1.5);
  // Smaller eps costs more.
  EXPECT_GT(degree_splitting_cost_det(0.01, 1024),
            degree_splitting_cost_det(0.1, 1024));
}

TEST(Cost, LogStar) {
  EXPECT_DOUBLE_EQ(log_star(1), 0.0);
  EXPECT_DOUBLE_EQ(log_star(2), 1.0);
  EXPECT_DOUBLE_EQ(log_star(4), 2.0);
  EXPECT_DOUBLE_EQ(log_star(65536), 4.0);
}

TEST(Ids, AllStrategiesArePermutations) {
  Rng rng(4);
  const graph::Graph g = graph::gen::gnp(30, 0.2, rng);
  for (IdStrategy s : {IdStrategy::kSequential, IdStrategy::kRandomPermutation,
                       IdStrategy::kDegreeDescending}) {
    const auto ids = assign_ids(g, s, rng);
    std::set<std::uint64_t> unique(ids.begin(), ids.end());
    EXPECT_EQ(unique.size(), g.num_nodes());
    EXPECT_EQ(*unique.rbegin(), g.num_nodes() - 1);
  }
}

TEST(Ids, DegreeDescendingOrdersByDegree) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);  // node 0 has max degree
  Rng rng(5);
  const auto ids = assign_ids(g, IdStrategy::kDegreeDescending, rng);
  EXPECT_EQ(ids[0], 3u);  // highest id goes to the highest-degree node
}

/// A program that floods the maximum UID seen so far; converges in
/// diameter-many rounds. Exercises send/receive plumbing and ports.
class MaxFlood : public NodeProgram {
 public:
  explicit MaxFlood(const NodeEnv& env) : env_(env), best_(env.uid) {}

  void send(std::size_t, Outbox& out) override { out.broadcast({best_}); }

  void receive(std::size_t round, const Inbox& inbox) override {
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      if (!inbox[p].empty()) best_ = std::max(best_, inbox[p][0]);
    }
    // A value being momentarily stable proves nothing in LOCAL (the true
    // max may still be several hops away); flood for n >= diameter rounds.
    if (round + 1 >= env_.n) stable_ = true;
  }

  [[nodiscard]] bool done() const override { return stable_; }

  std::uint64_t best() const { return best_; }

 private:
  NodeEnv env_;
  std::uint64_t best_;
  bool stable_ = false;
};

TEST(Network, FloodsMaximumUid) {
  Rng rng(6);
  const graph::Graph g = graph::gen::cycle(12);
  Network net(g, IdStrategy::kRandomPermutation, 99);
  std::vector<MaxFlood*> programs(g.num_nodes(), nullptr);
  CostMeter meter;
  const std::size_t rounds = net.run(
      [&](const NodeEnv& env) {
        auto p = std::make_unique<MaxFlood>(env);
        programs[env.node] = p.get();
        return p;
      },
      100, &meter);
  EXPECT_GT(rounds, 0u);
  EXPECT_EQ(meter.executed_rounds(), rounds);
  const std::uint64_t expected = g.num_nodes() - 1;
  for (MaxFlood* p : programs) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->best(), expected);
  }
}

/// Program that verifies the port mapping: every node sends its UID on each
/// port and checks that what it receives on port p matches neighbor_uids[p].
class PortChecker : public NodeProgram {
 public:
  explicit PortChecker(const NodeEnv& env) : env_(env) {}

  void send(std::size_t, Outbox& out) override {
    out.broadcast({env_.uid});
  }

  void receive(std::size_t, const Inbox& inbox) override {
    for (std::size_t p = 0; p < inbox.size(); ++p) {
      ASSERT_EQ(inbox[p].size(), 1u);
      EXPECT_EQ(inbox[p][0], env_.neighbor_uids[p]);
    }
    done_ = true;
  }

  [[nodiscard]] bool done() const override { return done_; }

 private:
  NodeEnv env_;
  bool done_ = false;
};

TEST(Network, PortsMatchNeighborUids) {
  Rng rng(7);
  const graph::Graph g = graph::gen::gnp(25, 0.3, rng);
  Network net(g, IdStrategy::kRandomPermutation, 5);
  net.run([](const NodeEnv& env) { return std::make_unique<PortChecker>(env); },
          4);
}

TEST(Network, ThrowsOnRoundLimit) {
  /// A program that never halts.
  class Forever : public NodeProgram {
   public:
    void send(std::size_t, Outbox&) override {}
    void receive(std::size_t, const Inbox&) override {}
    [[nodiscard]] bool done() const override { return false; }
  };
  const graph::Graph g = graph::gen::cycle(4);
  Network net(g, IdStrategy::kSequential, 1);
  EXPECT_THROW(
      net.run([](const NodeEnv&) { return std::make_unique<Forever>(); }, 3),
      ds::CheckError);
}

TEST(Network, PerNodeRandomnessIsStable) {
  const graph::Graph g = graph::gen::cycle(6);
  // Two networks with the same seed must hand nodes identical RNG streams.
  std::vector<std::uint64_t> draws_a;
  std::vector<std::uint64_t> draws_b;
  for (auto* out : {&draws_a, &draws_b}) {
    Network net(g, IdStrategy::kSequential, 1234);
    net.run(
        [out](const NodeEnv& env) {
          class OneShot : public NodeProgram {
           public:
            OneShot(NodeEnv env, std::vector<std::uint64_t>* sink)
                : env_(std::move(env)), sink_(sink) {}
            void send(std::size_t, Outbox&) override {}
            void receive(std::size_t, const Inbox&) override {
              sink_->push_back(env_.rng.next_raw());
              done_ = true;
            }
            [[nodiscard]] bool done() const override { return done_; }

           private:
            NodeEnv env_;
            std::vector<std::uint64_t>* sink_;
            bool done_ = false;
          };
          return std::make_unique<OneShot>(env, out);
        },
        2);
  }
  EXPECT_EQ(draws_a, draws_b);
}

}  // namespace
}  // namespace ds::local
