// Tests for the unified algorithm registry (src/algo/): catalog sanity,
// did-you-mean suggestions, typed parameter parsing, the capability gate,
// and the cross-runtime conformance suite — every registered Spec runs on
// {sequential, parallel, mp, tcp-loopback} over {gnp, torus, BA} (or the
// matching biregular instances for bipartite specs) with bit-identical
// outputs vs the sequential reference, while kSequentialOnly specs refuse
// scalable runtimes with a clear error.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "graph/generators.hpp"
#include "net/loopback.hpp"
#include "net/tcp_network.hpp"
#include "runtime/select.hpp"
#include "support/check.hpp"

namespace ds::algo {
namespace {

std::string error_of(const std::function<void()>& body) {
  try {
    body();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

// ---- Catalog sanity ------------------------------------------------------

TEST(Registry, CatalogIsCompleteAndUnique) {
  const auto& specs = all_specs();
  ASSERT_GE(specs.size(), 5u);
  std::set<std::string> names;
  for (const Spec& s : specs) {
    EXPECT_TRUE(names.insert(s.name).second) << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
    EXPECT_FALSE(s.verifier.empty()) << s.name;
    EXPECT_TRUE(s.run != nullptr) << s.name;
    EXPECT_EQ(&find(s.name), &s);
  }
  // The acceptance floor: at least five distributed-capable algorithms,
  // including one from src/splitting/.
  std::size_t scalable = 0;
  for (const Spec& s : specs) {
    if (s.capability == Capability::kAnyRuntime) ++scalable;
  }
  EXPECT_GE(scalable, 5u);
  EXPECT_EQ(find("split").capability, Capability::kAnyRuntime);
}

TEST(Registry, GeneratedListingsMentionEverySpec) {
  const std::string markdown = catalog_markdown();
  const std::string usage = usage_catalog();
  const std::string names = names_listing(false);
  for (const Spec& s : all_specs()) {
    EXPECT_NE(markdown.find("`" + s.name + "`"), std::string::npos) << s.name;
    EXPECT_NE(usage.find(s.name), std::string::npos) << s.name;
    EXPECT_NE(names.find(s.name), std::string::npos) << s.name;
  }
  // The scalable listing drops exactly the sequential-only specs.
  const std::string scalable = names_listing(true);
  EXPECT_EQ(scalable.find("weak-splitting"), std::string::npos) << scalable;
  EXPECT_EQ(scalable.find("netdecomp-carve"), std::string::npos) << scalable;
  EXPECT_NE(scalable.find("mis general all"), std::string::npos) << scalable;
  EXPECT_NE(scalable.find("split bipartite all"), std::string::npos)
      << scalable;
}

// ---- Did-you-mean + unknown-flag handling --------------------------------

TEST(Registry, UnknownAlgoSuggestsClosestName) {
  const std::string msg = error_of([] { find("colour"); });
  EXPECT_NE(msg.find("unknown algorithm 'colour'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("did you mean 'color'?"), std::string::npos) << msg;
}

TEST(Registry, UnknownAlgoWithoutCloseMatchListsKnownNames) {
  const std::string msg = error_of([] { find("zzzzzz"); });
  EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
  EXPECT_NE(msg.find("known:"), std::string::npos) << msg;
}

TEST(Suggest, FindsCloseCandidatesOnly) {
  const std::vector<std::string> candidates = {"threads", "workers", "hosts"};
  EXPECT_EQ(suggest("thread", candidates), "threads");
  EXPECT_EQ(suggest("worker", candidates), "workers");
  EXPECT_EQ(suggest("completely-different", candidates), "");
}

TEST(Params, DefaultsAndOverrides) {
  const std::vector<ParamSpec> schema = {
      {"max-rounds", ParamType::kInt, "10000", ""},
      {"eps", ParamType::kDouble, "0.5", ""},
      {"fast", ParamType::kFlag, "0", ""},
      {"ids", ParamType::kString, "sequential", ""},
  };
  const Params defaults = Params::parse(schema, {});
  EXPECT_EQ(defaults.get_int("max-rounds"), 10000);
  EXPECT_DOUBLE_EQ(defaults.get_double("eps"), 0.5);
  EXPECT_FALSE(defaults.get_flag("fast"));
  EXPECT_EQ(defaults.get("ids"), "sequential");
  const Params overridden = Params::parse(
      schema, {{"max-rounds", "7"}, {"fast", "true"}, {"ids", "random"}});
  EXPECT_EQ(overridden.get_int("max-rounds"), 7);
  EXPECT_TRUE(overridden.get_flag("fast"));
  EXPECT_EQ(overridden.get("ids"), "random");
}

TEST(Params, UnknownKeySuggestsAndListsKnown) {
  const std::vector<ParamSpec> schema = {
      {"max-rounds", ParamType::kInt, "10000", ""},
      {"min-degree", ParamType::kInt, "3", ""},
  };
  const std::string msg = error_of(
      [&] { Params::parse(schema, {{"max-round", "5"}}); });
  EXPECT_NE(msg.find("unknown parameter 'max-round'"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("did you mean 'max-rounds'?"), std::string::npos) << msg;
  EXPECT_NE(msg.find("known: max-rounds, min-degree"), std::string::npos)
      << msg;
}

TEST(Params, TypeErrorsAreRejected) {
  const std::vector<ParamSpec> schema = {
      {"n", ParamType::kInt, "1", ""},
      {"p", ParamType::kDouble, "0.5", ""},
      {"f", ParamType::kFlag, "0", ""},
  };
  EXPECT_THROW(Params::parse(schema, {{"n", "abc"}}), ds::CheckError);
  EXPECT_THROW(Params::parse(schema, {{"n", "1.5"}}), ds::CheckError);
  // Counts must not wrap through std::size_t: negatives are rejected
  // unless the schema explicitly lowers min_value.
  EXPECT_THROW(Params::parse(schema, {{"n", "-1"}}), ds::CheckError);
  EXPECT_THROW(Params::parse(schema, {{"p", "lots"}}), ds::CheckError);
  EXPECT_THROW(Params::parse(schema, {{"f", "maybe"}}), ds::CheckError);
  // Reading a key outside the schema is a bug, not a typo path.
  EXPECT_THROW((void)Params::parse(schema, {}).get_int("missing"),
               ds::CheckError);
}

// ---- Capability gate -----------------------------------------------------

TEST(Registry, SequentialOnlySpecsRefuseScalableRuntimes) {
  Rng rng(3);
  const auto b = graph::gen::random_biregular(24, 48, 6, rng);
  for (const Spec& s : all_specs()) {
    if (s.capability != Capability::kSequentialOnly) continue;
    RunContext ctx;
    ctx.bipartite = &b;
    ctx.sequential_runtime = false;  // any non-sequential runtime
    const std::string msg = error_of([&] { execute(s, ctx); });
    EXPECT_NE(msg.find("sequential-only"), std::string::npos) << s.name;
    EXPECT_NE(msg.find(s.name), std::string::npos) << s.name;
  }
}

TEST(Registry, SequentialOnlySpecsRunSequentially) {
  Rng rng(4);
  const graph::Graph g = graph::gen::gnp(40, 0.15, rng);
  const auto b = graph::gen::random_biregular(24, 48, 6, rng);
  for (const Spec& s : all_specs()) {
    if (s.capability != Capability::kSequentialOnly) continue;
    RunContext ctx;
    ctx.graph = &g;
    ctx.bipartite = &b;
    ctx.seed = 5;
    ctx.params = Params::parse(s.params, {});
    const Result result = execute(s, ctx);
    EXPECT_TRUE(result.verified) << s.name;
    EXPECT_FALSE(result.output_words.empty()) << s.name;
  }
}

// ---- Cross-runtime conformance -------------------------------------------

struct Instance {
  std::string label;
  graph::Graph graph;
  graph::BipartiteGraph bipartite;
};

std::vector<Instance> instances_for(const Spec& spec) {
  std::vector<Instance> out;
  if (spec.input == InputKind::kGeneralGraph) {
    Rng rng(11);
    out.push_back({"gnp", graph::gen::gnp(60, 0.12, rng), {}});
    out.push_back({"torus", graph::gen::torus(7, 6), {}});
    out.push_back({"ba", graph::gen::barabasi_albert(70, 3, rng), {}});
  } else {
    // The bipartite counterparts of the sweep: biregular instances at
    // three degree/size shapes.
    Rng rng(12);
    out.push_back({"bireg6", graph::Graph(),
                   graph::gen::random_biregular(32, 64, 6, rng)});
    out.push_back({"bireg4", graph::Graph(),
                   graph::gen::random_biregular(24, 24, 4, rng)});
    out.push_back({"bireg8", graph::Graph(),
                   graph::gen::random_biregular(48, 96, 8, rng)});
  }
  return out;
}

RunContext context_for(const Spec& spec, const Instance& inst,
                       local::ExecutorFactory factory, bool sequential) {
  RunContext ctx;
  if (spec.input == InputKind::kGeneralGraph) {
    ctx.graph = &inst.graph;
  } else {
    ctx.bipartite = &inst.bipartite;
  }
  ctx.seed = 9;
  ctx.params = Params::parse(spec.params, {});
  ctx.factory = std::move(factory);
  ctx.sequential_runtime = sequential;
  return ctx;
}

TEST(Conformance, EverySpecMatchesSequentialOnParallelAndMp) {
  for (const Spec& spec : all_specs()) {
    if (spec.capability != Capability::kAnyRuntime) continue;
    for (const Instance& inst : instances_for(spec)) {
      const Result expected =
          execute(spec, context_for(spec, inst, {}, true));
      EXPECT_TRUE(expected.verified) << spec.name << "/" << inst.label;
      for (const char* runtime : {"parallel", "mp"}) {
        runtime::RuntimeConfig config;
        if (std::string(runtime) == "parallel") {
          config.kind = runtime::RuntimeKind::kParallel;
          config.threads = 2;
        } else {
          config.kind = runtime::RuntimeKind::kMultiProcess;
          config.workers = 2;
        }
        const Result got = execute(
            spec, context_for(spec, inst,
                              runtime::make_executor_factory(config), false));
        EXPECT_EQ(got.output_words, expected.output_words)
            << spec.name << "/" << inst.label << "/" << runtime;
        EXPECT_EQ(got.executed_rounds, expected.executed_rounds)
            << spec.name << "/" << inst.label << "/" << runtime;
        EXPECT_EQ(got.summary, expected.summary)
            << spec.name << "/" << inst.label << "/" << runtime;
        EXPECT_TRUE(got.verified) << spec.name << "/" << inst.label;
      }
    }
  }
}

TEST(Conformance, EverySpecMatchesSequentialOnTcpLoopback) {
  // One instance per spec keeps the fleet count bounded; the mp/parallel
  // sweep above already covers the full instance grid.
  net::TcpOptions topts;
  topts.handshake_timeout_ms = 20000;
  topts.round_timeout_ms = 30000;
  for (const Spec& spec : all_specs()) {
    if (spec.capability != Capability::kAnyRuntime) continue;
    const Instance inst = instances_for(spec).front();
    const Result expected = execute(spec, context_for(spec, inst, {}, true));
    const net::LoopbackReport report = net::run_loopback_ranks(
        2, [&](net::LoopbackRank&& lr) -> int {
          net::Socket* first_listen = &lr.listen;
          const std::size_t rank = lr.rank;
          const auto hosts = lr.hosts;
          local::ExecutorFactory factory =
              [&](const graph::Graph& fg, local::IdStrategy strategy,
                  std::uint64_t seed) -> std::unique_ptr<local::Executor> {
            net::TcpNetworkConfig config;
            config.rank = rank;
            config.hosts = hosts;
            config.transport = topts;
            config.listen = std::move(*first_listen);
            return std::make_unique<net::TcpNetwork>(fg, strategy, seed,
                                                     std::move(config));
          };
          const Result got = execute(
              spec, context_for(spec, inst, std::move(factory), false));
          // Exit-code checks, not EXPECT: a gtest failure on the forked
          // child rank would die silently with the process.
          if (got.output_words != expected.output_words) return 6;
          if (got.executed_rounds != expected.executed_rounds) return 7;
          return 0;
        });
    EXPECT_TRUE(report.all_ok()) << spec.name;
  }
}

}  // namespace
}  // namespace ds::algo
