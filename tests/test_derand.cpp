// Tests for the conditional-expectation derandomization engine and the
// concrete pessimistic estimators, including the supermartingale property
// checks that guard estimator validity.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "derand/engine.hpp"
#include "derand/events.hpp"
#include "graph/generators.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::derand {
namespace {

std::vector<std::uint32_t> identity_order(std::size_t n) {
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(Engine, RejectsBadOrders) {
  Problem p;
  p.num_variables = 2;
  p.num_constraints = 0;
  p.var_constraints.resize(2);
  p.phi = [](std::uint32_t, const std::vector<int>&) { return 0.0; };
  EXPECT_THROW(derandomize(p, {0}), ds::CheckError);
  EXPECT_THROW(derandomize(p, {0, 0}), ds::CheckError);
  EXPECT_THROW(derandomize(p, {0, 5}), ds::CheckError);
}

TEST(Engine, DetectsNonSupermartingaleEstimator) {
  // An estimator that grows whenever a variable is fixed is invalid; the
  // engine must throw.
  Problem p;
  p.num_variables = 1;
  p.num_constraints = 1;
  p.num_choices = 2;
  p.var_constraints = {{0}};
  p.phi = [](std::uint32_t, const std::vector<int>& a) {
    return a[0] == kUnset ? 0.1 : 5.0;
  };
  EXPECT_THROW(derandomize(p, identity_order(1)), ds::CheckError);
}

TEST(Engine, GreedyPicksTheCheapestChoice) {
  // Single variable, estimator prefers choice 1.
  Problem p;
  p.num_variables = 1;
  p.num_constraints = 1;
  p.num_choices = 3;
  p.var_constraints = {{0}};
  p.phi = [](std::uint32_t, const std::vector<int>& a) {
    if (a[0] == kUnset) return 0.5;
    return a[0] == 1 ? 0.0 : 0.5;
  };
  const Result r = derandomize(p, identity_order(1));
  EXPECT_EQ(r.assignment[0], 1);
  // Potential 0 up to floating-point dust from the greedy updates.
  EXPECT_NEAR(r.final_potential, 0.0, 1e-12);
}

graph::BipartiteGraph random_instance(std::size_t nu, std::size_t nv,
                                      std::size_t delta, std::uint64_t seed) {
  Rng rng(seed);
  return graph::gen::random_left_regular(nu, nv, delta, rng);
}

TEST(WeakSplittingEstimator, InitialPotentialMatchesUnionBound) {
  const auto b = random_instance(20, 60, 10, 1);
  const Problem p = weak_splitting_problem(b);
  std::vector<int> empty(b.num_right(), kUnset);
  // Each constraint contributes 2^{1-deg} = 2^{-9}.
  EXPECT_NEAR(total_potential(p, empty), 20.0 * std::pow(2.0, -9.0), 1e-12);
}

TEST(WeakSplittingEstimator, ExactConditionals) {
  // One constraint with 2 neighbors.
  graph::BipartiteGraph b(1, 2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Problem p = weak_splitting_problem(b);
  EXPECT_NEAR(p.phi(0, {kUnset, kUnset}), 0.5, 1e-12);
  EXPECT_NEAR(p.phi(0, {0, kUnset}), 0.5, 1e-12);   // all-red needs 1 coin
  EXPECT_NEAR(p.phi(0, {0, 0}), 1.0, 1e-12);        // monochromatic: bad
  EXPECT_NEAR(p.phi(0, {0, 1}), 0.0, 1e-12);        // both colors: safe
}

TEST(WeakSplittingEstimator, DegreeZeroConstraintIsCertainlyBad) {
  graph::BipartiteGraph b(1, 1);  // left node with no edges
  const Problem p = weak_splitting_problem(b);
  EXPECT_DOUBLE_EQ(p.phi(0, {kUnset}), 1.0);
}

TEST(WeakSplittingEstimator, GreedySolvesWhenPotentialBelowOne) {
  const auto b = random_instance(64, 128, 16, 2);
  const Problem p = weak_splitting_problem(b);
  const Result r = derandomize(p, identity_order(b.num_right()));
  EXPECT_LT(r.initial_potential, 1.0);
  // Potential 0 up to floating-point dust from the greedy updates.
  EXPECT_NEAR(r.final_potential, 0.0, 1e-12);
  splitting::Coloring colors(b.num_right());
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    colors[v] = r.assignment[v] == 0 ? splitting::Color::kRed
                                     : splitting::Color::kBlue;
  }
  EXPECT_TRUE(splitting::is_weak_splitting(b, colors));
}

TEST(WeakSplittingEstimator, OrderIndependentValidity) {
  // Weak splitting greedy must produce valid outputs under any processing
  // order (the SLOCAL correctness requirement).
  const auto b = random_instance(32, 64, 12, 3);
  const Problem p = weak_splitting_problem(b);
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    auto order = identity_order(b.num_right());
    std::vector<std::size_t> perm = rng.permutation(order.size());
    std::vector<std::uint32_t> shuffled(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      shuffled[i] = order[perm[i]];
    }
    const Result r = derandomize(p, shuffled);
    EXPECT_DOUBLE_EQ(r.final_potential, 0.0) << "trial " << trial;
  }
}

TEST(MissingColorEstimator, CountsMissingColors) {
  graph::BipartiteGraph b(1, 3);
  for (graph::RightId v = 0; v < 3; ++v) b.add_edge(0, v);
  const Problem p = missing_color_problem(b, 3);
  const double keep = 2.0 / 3.0;
  EXPECT_NEAR(p.phi(0, {kUnset, kUnset, kUnset}), 3.0 * std::pow(keep, 3),
              1e-12);
  EXPECT_NEAR(p.phi(0, {0, kUnset, kUnset}), 2.0 * std::pow(keep, 2), 1e-12);
  EXPECT_NEAR(p.phi(0, {0, 1, 2}), 0.0, 1e-12);  // rainbow: no color missing
}

TEST(MissingColorEstimator, MartingaleUnderUniformChoice) {
  // Averaging phi over one variable's uniform choice must reproduce the
  // unset value exactly (the estimator is an exact martingale).
  graph::BipartiteGraph b(1, 4);
  for (graph::RightId v = 0; v < 4; ++v) b.add_edge(0, v);
  const int C = 3;
  const Problem p = missing_color_problem(b, C);
  std::vector<int> a(4, kUnset);
  a[1] = 2;  // some other variable already fixed
  const double before = p.phi(0, a);
  double avg = 0.0;
  for (int c = 0; c < C; ++c) {
    a[0] = c;
    avg += p.phi(0, a) / C;
  }
  EXPECT_NEAR(avg, before, 1e-12);
}

TEST(MissingColorEstimator, GreedyMakesAllColorsSeen) {
  // Degree ~ C log C suffices in practice for the greedy to cover all
  // colors even when the formal bound is loose.
  const auto b = random_instance(16, 200, 60, 4);
  const int C = 8;
  const Problem p = missing_color_problem(b, C);
  const Result r = derandomize(p, identity_order(b.num_right()));
  // Potential 0 up to floating-point dust from the greedy updates.
  EXPECT_NEAR(r.final_potential, 0.0, 1e-12);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    std::vector<bool> seen(C, false);
    for (graph::RightId v : b.left_neighbors(u)) {
      seen[static_cast<std::size_t>(r.assignment[v])] = true;
    }
    for (int c = 0; c < C; ++c) EXPECT_TRUE(seen[c]) << "u=" << u << " c=" << c;
  }
}

TEST(OverloadEstimator, MartingaleUnderUniformChoice) {
  graph::BipartiteGraph b(1, 6);
  for (graph::RightId v = 0; v < 6; ++v) b.add_edge(0, v);
  const int C = 4;
  const Problem p = overload_problem(b, C, 0.5);
  std::vector<int> a(6, kUnset);
  a[3] = 1;
  const double before = p.phi(0, a);
  double avg = 0.0;
  for (int c = 0; c < C; ++c) {
    a[0] = c;
    avg += p.phi(0, a) / C;
  }
  EXPECT_NEAR(avg, before, 1e-12);
  a[0] = kUnset;
}

TEST(OverloadEstimator, GreedyBalancesColors) {
  const auto b = random_instance(24, 120, 40, 5);
  const int C = 4;
  const double lambda = 0.5;  // cap = 20 out of 40, loose enough
  const Problem p = overload_problem(b, C, lambda);
  const Result r = derandomize(p, identity_order(b.num_right()));
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    std::vector<std::size_t> count(C, 0);
    for (graph::RightId v : b.left_neighbors(u)) {
      ++count[static_cast<std::size_t>(r.assignment[v])];
    }
    for (int c = 0; c < C; ++c) {
      EXPECT_LE(count[c], static_cast<std::size_t>(
                              std::ceil(lambda * b.left_degree(u))));
    }
  }
}

TEST(TwoSidedEstimator, MartingaleUnderFairCoin) {
  graph::BipartiteGraph b(1, 8);
  for (graph::RightId v = 0; v < 8; ++v) b.add_edge(0, v);
  const Problem p = two_sided_problem(b, 0.2);
  std::vector<int> a(8, kUnset);
  a[5] = 0;
  const double before = p.phi(0, a);
  a[0] = 0;
  const double red = p.phi(0, a);
  a[0] = 1;
  const double blue = p.phi(0, a);
  EXPECT_NEAR(0.5 * red + 0.5 * blue, before, 1e-12);
}

TEST(TwoSidedEstimator, GreedyKeepsCountsInWindow) {
  // Potential ~ 2*nu*exp(-2 eps^2 delta): delta = 64 at eps = 0.2 gives
  // ~0.36 < 1 (delta = 32 sits outside at ~4.6).
  const auto b = random_instance(30, 180, 64, 6);
  const double eps = 0.2;
  const Problem p = two_sided_problem(b, eps);
  const Result r = derandomize(p, identity_order(b.num_right()));
  EXPECT_LT(r.initial_potential, 1.0);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    std::size_t red = 0;
    for (graph::RightId v : b.left_neighbors(u)) {
      if (r.assignment[v] == 0) ++red;
    }
    const double d = static_cast<double>(b.left_degree(u));
    EXPECT_LE(static_cast<double>(red), (0.5 + eps) * d + 1e-9);
    EXPECT_GE(static_cast<double>(red), (0.5 - eps) * d - 1e-9);
  }
}

}  // namespace
}  // namespace ds::derand
