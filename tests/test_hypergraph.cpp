// Tests for the low-rank hypergraph substrate: structure, degree
// splitting, and maximal matching.

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "hypergraph/hypergraph.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::hypergraph {
namespace {

Hypergraph triangle_of_triples() {
  // 6 vertices, 3 hyperedges pairwise sharing one vertex.
  Hypergraph h(6);
  h.add_edge({0, 1, 2});
  h.add_edge({2, 3, 4});
  h.add_edge({4, 5, 0});
  return h;
}

TEST(Structure, DegreesRankIncidence) {
  const auto h = triangle_of_triples();
  EXPECT_EQ(h.num_vertices(), 6u);
  EXPECT_EQ(h.num_edges(), 3u);
  EXPECT_EQ(h.rank(), 3u);
  EXPECT_EQ(h.degree(0), 2u);
  EXPECT_EQ(h.degree(1), 1u);
  EXPECT_EQ(h.min_degree(), 1u);
  EXPECT_EQ(h.max_degree(), 2u);
  const auto b = h.incidence();
  EXPECT_EQ(b.num_left(), 6u);
  EXPECT_EQ(b.num_right(), 3u);
  EXPECT_EQ(b.rank(), 3u);  // hyperedge size = right degree
}

TEST(Structure, RejectsMalformedHyperedges) {
  Hypergraph h(3);
  EXPECT_THROW(h.add_edge({}), ds::CheckError);
  EXPECT_THROW(h.add_edge({0, 0}), ds::CheckError);
  EXPECT_THROW(h.add_edge({0, 7}), ds::CheckError);
}

TEST(Structure, ConflictGraphSharesVertices) {
  const auto h = triangle_of_triples();
  const auto c = h.conflict_graph();
  EXPECT_EQ(c.num_nodes(), 3u);
  EXPECT_EQ(c.num_edges(), 3u);  // pairwise conflicts
}

TEST(Structure, FromGraphIsRankTwo) {
  Rng rng(1);
  const auto g = graph::gen::random_regular(40, 4, rng);
  const auto h = from_graph(g);
  EXPECT_EQ(h.rank(), 2u);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.max_degree(), 4u);
}

TEST(Generator, NearRegularLowRank) {
  Rng rng(2);
  const auto h = random_regular_hypergraph(120, 8, 4, rng);
  EXPECT_LE(h.rank(), 4u);
  EXPECT_GE(h.min_degree(), 6u);  // slot drops cost at most a couple
  EXPECT_LE(h.max_degree(), 8u);
}

TEST(Split, VerifierBoundaries) {
  const auto h = triangle_of_triples();
  // The three degree-2 vertices pairwise share a hyperedge (an odd
  // conflict triangle), so *no* eps=0 split exists: each coloring leaves
  // some vertex monochromatic. {red, blue, blue} fails at vertex 4.
  EXPECT_FALSE(is_hyperedge_split(h, {true, false, false}, 0.0));
  EXPECT_FALSE(is_hyperedge_split(h, {true, true, true}, 0.0));
  // eps = 0.5 raises the cap to the full degree: anything goes.
  EXPECT_TRUE(is_hyperedge_split(h, {true, false, false}, 0.5));
  // Degree threshold 3 unconstrains everything here.
  EXPECT_TRUE(is_hyperedge_split(h, {true, true, true}, 0.0, 3));
}

class SplitSweep : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(SplitSweep, BalancedAtEveryVertex) {
  const auto [nv, d, r] = GetParam();
  Rng rng(nv * d + r);
  const auto h = random_regular_hypergraph(nv, d, r, rng);
  local::CostMeter meter;
  const auto result = hyperedge_split(h, 0.2, 8, rng, &meter);
  EXPECT_TRUE(is_hyperedge_split(h, result.is_red, 0.2, 8));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SplitSweep,
    ::testing::Values(std::make_tuple(64, 16, 2), std::make_tuple(64, 16, 3),
                      std::make_tuple(128, 32, 4), std::make_tuple(128, 24, 8),
                      std::make_tuple(256, 64, 16)));

TEST(Split, RankTwoMatchesGraphSemantics) {
  // On a rank-2 hypergraph from a graph, hyperedge splitting is edge
  // splitting: per-node red/blue incident edge counts are balanced.
  Rng rng(3);
  const auto g = graph::gen::random_regular(128, 32, rng);
  const auto h = from_graph(g);
  const auto result = hyperedge_split(h, 0.2, 8, rng);
  EXPECT_TRUE(is_hyperedge_split(h, result.is_red, 0.2, 8));
}

TEST(Split, EdgelessAndUnconstrainedInstances) {
  Hypergraph h(5);
  Rng rng(4);
  const auto result = hyperedge_split(h, 0.2, 0, rng);
  EXPECT_TRUE(result.is_red.empty());
  Hypergraph one(3);
  one.add_edge({0, 1});
  const auto r2 = hyperedge_split(one, 0.2, 5, rng);  // all below threshold
  EXPECT_EQ(r2.is_red.size(), 1u);
}

TEST(Matching, VerifierCatchesOverlapsAndNonMaximality) {
  const auto h = triangle_of_triples();
  // Edges 0 and 1 share vertex 2: not disjoint.
  EXPECT_FALSE(is_maximal_matching(h, {true, true, false}));
  // Empty set is not maximal (edge 0 is free).
  EXPECT_FALSE(is_maximal_matching(h, {false, false, false}));
  // Any single edge blocks the other two here.
  EXPECT_TRUE(is_maximal_matching(h, {true, false, false}));
}

TEST(Matching, GreedyAndRandomizedAreValid) {
  Rng rng(5);
  for (std::size_t r : {2, 3, 5}) {
    const auto h = random_regular_hypergraph(90, 6, r, rng);
    EXPECT_TRUE(is_maximal_matching(h, greedy_maximal_matching(h)));
    std::size_t rounds = 0;
    local::CostMeter meter;
    const auto rand = randomized_maximal_matching(h, 7, &rounds, &meter);
    EXPECT_TRUE(is_maximal_matching(h, rand));
    EXPECT_GT(rounds, 0u);
    EXPECT_GT(meter.charged_rounds(), 0.0);
  }
}

TEST(Matching, GraphRankTwoMatchingIsGraphMatching) {
  Rng rng(6);
  const auto g = graph::gen::random_regular(60, 6, rng);
  const auto h = from_graph(g);
  const auto m = greedy_maximal_matching(h);
  // No two matched hyperedges (= graph edges) share an endpoint.
  std::vector<int> cover(g.num_nodes(), 0);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    if (!m[e]) continue;
    ++cover[g.edges()[e].u];
    ++cover[g.edges()[e].v];
  }
  for (int c : cover) EXPECT_LE(c, 1);
}

}  // namespace
}  // namespace ds::hypergraph
