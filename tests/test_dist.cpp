// Tests for the multi-process executor: the determinism contract — for a
// fixed (graph, IdStrategy, seed), DistributedNetwork must produce
// bit-identical per-node outputs, round counts and RoundStats to the
// sequential Network at every worker count — plus the executor-portable
// output gather, the abort paths, and a >= 100k-node stress instance.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coloring/randcolor.hpp"
#include "determinism_probe.hpp"
#include "dist/distributed_network.hpp"
#include "graph/generators.hpp"
#include "local/network.hpp"
#include "local/round_stats.hpp"
#include "mis/mis.hpp"
#include "orient/sinkless.hpp"
#include "runtime/select.hpp"
#include "support/check.hpp"

namespace ds::dist {
namespace {

// The probe program is shared with the thread-runtime determinism suite
// (tests/determinism_probe.hpp), so the two suites pin the same traffic
// pattern against every executor.
using probes::probe_factory;

local::OutputFn probe_output_fn() {
  return [](graph::NodeId, const local::NodeProgram& p,
            std::vector<std::uint64_t>& out) {
    out.push_back(static_cast<const probes::ProbeBase&>(p).digest());
  };
}

std::vector<std::uint64_t> probe_digests(local::Executor& exec,
                                         std::size_t* rounds = nullptr) {
  exec.set_output_fn(probe_output_fn());
  const std::size_t r = exec.run(probe_factory(), 100);
  if (rounds != nullptr) *rounds = r;
  std::vector<std::uint64_t> digests(exec.graph().num_nodes());
  for (graph::NodeId v = 0; v < digests.size(); ++v) {
    digests[v] = exec.outputs().value(v);
  }
  return digests;
}

void expect_bit_identical(const graph::Graph& g, local::IdStrategy strategy,
                          std::uint64_t seed) {
  local::Network sequential(g, strategy, seed);
  std::size_t seq_rounds = 0;
  const auto expected = probe_digests(sequential, &seq_rounds);
  for (std::size_t workers : {1, 2, 4}) {
    DistributedConfig config;
    config.workers = workers;
    DistributedNetwork mp(g, strategy, seed, config);
    EXPECT_EQ(mp.uids(), sequential.uids());
    std::size_t mp_rounds = 0;
    const auto got = probe_digests(mp, &mp_rounds);
    EXPECT_EQ(mp_rounds, seq_rounds) << "workers=" << workers;
    EXPECT_EQ(got, expected) << "workers=" << workers;
  }
}

// ---- Determinism suite ---------------------------------------------------

TEST(DistributedDeterminism, Gnp) {
  Rng rng(7);
  const auto g = graph::gen::gnp(300, 0.03, rng);
  expect_bit_identical(g, local::IdStrategy::kRandomPermutation, 11);
}

TEST(DistributedDeterminism, Torus) {
  const auto g = graph::gen::torus(20, 20);
  expect_bit_identical(g, local::IdStrategy::kSequential, 3);
}

TEST(DistributedDeterminism, RandomBiregular) {
  Rng rng(5);
  const auto b = graph::gen::random_biregular(120, 240, 6, rng);
  expect_bit_identical(b.unified(), local::IdStrategy::kDegreeDescending, 9);
}

TEST(DistributedDeterminism, BarabasiAlbertSkew) {
  // Preferential attachment: hub nodes concentrate cut edges on one worker —
  // the worst case for the halo tables.
  Rng rng(13);
  const auto g = graph::gen::barabasi_albert(2000, 4, rng);
  expect_bit_identical(g, local::IdStrategy::kRandomPermutation, 17);
}

TEST(DistributedDeterminism, StressHundredThousandNodes) {
  // >= 100k nodes: torus 370x370 = 136,900 (also exercised under ASan/UBSan
  // in the sanitizer CI job).
  const auto g = graph::gen::torus(370, 370);
  local::Network sequential(g, local::IdStrategy::kSequential, 123);
  const auto expected = probe_digests(sequential);
  DistributedConfig config;
  config.workers = 2;
  DistributedNetwork mp(g, local::IdStrategy::kSequential, 123, config);
  EXPECT_EQ(probe_digests(mp), expected);
}

// Algorithm-level equality through the ExecutorFactory plumbing: Luby MIS,
// trial coloring and the sinkless-orientation program, at 2 and 4 workers.
TEST(DistributedDeterminism, LubyTrialColoringSinkless) {
  Rng rng(2);
  const auto g = graph::gen::random_regular(384, 8, rng);
  const auto seq_mis = mis::luby(g, 77);
  const auto seq_col = coloring::randomized_coloring(g, 78);
  const auto seq_orient = orient::sinkless_program(g, 79, 3);
  for (std::size_t workers : {2, 4}) {
    runtime::RuntimeConfig config;
    config.kind = runtime::RuntimeKind::kMultiProcess;
    config.workers = workers;
    const auto executor = runtime::make_executor_factory(config);

    const auto mp_mis = mis::luby(g, 77, nullptr, 10000,
                                  local::IdStrategy::kSequential, executor);
    EXPECT_EQ(mp_mis.in_mis, seq_mis.in_mis) << "workers=" << workers;
    EXPECT_EQ(mp_mis.executed_rounds, seq_mis.executed_rounds);

    const auto mp_col = coloring::randomized_coloring(
        g, 78, nullptr, 10000, local::IdStrategy::kSequential, executor);
    EXPECT_EQ(mp_col.colors, seq_col.colors) << "workers=" << workers;
    EXPECT_EQ(mp_col.num_colors, seq_col.num_colors);
    EXPECT_EQ(mp_col.executed_rounds, seq_col.executed_rounds);

    const auto mp_orient =
        orient::sinkless_program(g, 79, 3, nullptr, 30, executor);
    EXPECT_EQ(mp_orient.toward_v, seq_orient.toward_v)
        << "workers=" << workers;
    EXPECT_EQ(mp_orient.executed_rounds, seq_orient.executed_rounds);
    EXPECT_EQ(mp_orient.trials, seq_orient.trials);
  }
}

TEST(DistributedRoundStats, MatchesSequentialExecutor) {
  Rng rng(31);
  const auto g = graph::gen::gnp(200, 0.03, rng);
  local::Network seq(g, local::IdStrategy::kSequential, 8);
  DistributedConfig config;
  config.workers = 3;
  DistributedNetwork mp(g, local::IdStrategy::kSequential, 8, config);
  std::vector<local::RoundStats> seq_stats;
  std::vector<local::RoundStats> mp_stats;
  seq.set_stats_sink([&](const local::RoundStats& s) {
    seq_stats.push_back(s);
  });
  mp.set_stats_sink([&](const local::RoundStats& s) {
    mp_stats.push_back(s);
  });
  const std::size_t seq_rounds = seq.run(probe_factory(), 100);
  const std::size_t mp_rounds = mp.run(probe_factory(), 100);
  EXPECT_EQ(seq_rounds, mp_rounds);
  ASSERT_EQ(seq_stats.size(), seq_rounds);
  ASSERT_EQ(mp_stats.size(), mp_rounds);
  for (std::size_t r = 0; r < seq_stats.size(); ++r) {
    EXPECT_EQ(mp_stats[r].round, r);
    EXPECT_EQ(seq_stats[r].live_nodes, mp_stats[r].live_nodes) << r;
    EXPECT_EQ(seq_stats[r].messages, mp_stats[r].messages) << r;
    EXPECT_EQ(seq_stats[r].payload_words, mp_stats[r].payload_words) << r;
    EXPECT_GE(mp_stats[r].wall_seconds, 0.0);
  }
}

// ---- Executor behavior ---------------------------------------------------

TEST(DistributedNetwork, CostMeterAndReuse) {
  const auto g = graph::gen::torus(8, 8);
  DistributedConfig config;
  config.workers = 2;
  DistributedNetwork net(g, local::IdStrategy::kSequential, 4, config);
  local::CostMeter meter;
  net.set_output_fn(probe_output_fn());
  const std::size_t r1 = net.run(probe_factory(), 100, &meter);
  EXPECT_EQ(meter.executed_rounds(), r1);
  // Re-running the same executor (a fresh worker fleet per run) must be
  // deterministic too.
  const auto first = probe_digests(net);
  const auto second = probe_digests(net);
  EXPECT_EQ(first, second);
}

TEST(DistributedNetwork, ThrowsWhenRoundLimitHit) {
  const auto g = graph::gen::cycle(16);
  DistributedConfig config;
  config.workers = 2;
  DistributedNetwork net(g, local::IdStrategy::kSequential, 1, config);
  EXPECT_THROW(net.run(probe_factory(), 2), ds::CheckError);
  // The executor must stay usable after the aborted fleet is torn down.
  EXPECT_GT(net.run(probe_factory(), 100), 2u);
}

TEST(DistributedNetwork, HaloOverflowAbortsCleanly) {
  // A program whose cut messages exceed the transport reservation must fail
  // loudly (naming the knob) in every worker, not hang or corrupt.
  const auto g = graph::gen::complete(16);
  DistributedConfig config;
  config.workers = 2;
  config.halo_words_per_port = 1;  // floor is 64 words/pair; send > that
  DistributedNetwork net(g, local::IdStrategy::kSequential, 5, config);
  const auto chatty = [](const local::NodeEnv& env) {
    class Chatty final : public local::NodeProgram {
     public:
      explicit Chatty(std::size_t degree) : degree_(degree) {}
      void send(std::size_t, local::Outbox& out) override {
        for (std::size_t p = 0; p < degree_; ++p) {
          const std::vector<std::uint64_t> payload(64, p);
          out.write(p, payload.data(), payload.size());
        }
      }
      void receive(std::size_t, const local::Inbox&) override {
        done_ = true;
      }
      [[nodiscard]] bool done() const override { return done_; }

     private:
      std::size_t degree_;
      bool done_ = false;
    };
    return std::make_unique<Chatty>(env.degree);
  };
  try {
    net.run(chatty, 10);
    FAIL() << "expected halo overflow";
  } catch (const ds::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("halo"), std::string::npos);
  }
}

TEST(DistributedNetwork, ProgramAccessorIsOwnerLocal) {
  const auto g = graph::gen::torus(8, 8);
  DistributedConfig config;
  config.workers = 2;
  DistributedNetwork net(g, local::IdStrategy::kSequential, 4, config);
  net.run(probe_factory(), 100);
  // Worker 0's own range is resident in the calling process...
  const graph::NodeId mine = net.partition().first_node(0);
  EXPECT_NO_THROW((void)net.program(mine));
  // ...another worker's nodes live in a process that no longer exists.
  const graph::NodeId theirs = net.partition().first_node(1);
  EXPECT_THROW((void)net.program(theirs), ds::CheckError);
}

TEST(DistributedNetwork, DegenerateInstances) {
  // More workers than nodes: the fleet is clamped to the node count (an
  // empty range would pay fork + barrier costs for nothing) and the run
  // must still be bit-identical to the sequential executor.
  const auto small = graph::gen::cycle(3);
  expect_bit_identical(small, local::IdStrategy::kSequential, 2);
  {
    DistributedConfig config;
    config.workers = 8;
    DistributedNetwork net(small, local::IdStrategy::kSequential, 2, config);
    EXPECT_EQ(net.num_workers(), 3u);
  }

  // Isolated nodes only (no edges at all, nothing to exchange).
  const graph::Graph isolated(5);
  expect_bit_identical(isolated, local::IdStrategy::kSequential, 6);

  // Empty graph: zero rounds, empty output table.
  const graph::Graph empty(0);
  DistributedConfig config;
  config.workers = 2;
  DistributedNetwork net(empty, local::IdStrategy::kSequential, 1, config);
  net.set_output_fn(probe_output_fn());
  EXPECT_EQ(net.run(probe_factory(), 10), 0u);
  EXPECT_EQ(net.outputs().size(), 0u);
}

TEST(DistributedNetwork, DegreeSizedOutputRowsFitTheGather) {
  // Regression: the gather reservation must accommodate degree-proportional
  // output rows (e.g. sinkless ships one word per port) even when the
  // degree-balanced split gives one worker a single huge-degree hub and
  // nothing else — a flat per-node budget used to overflow here while the
  // in-process executors succeeded.
  graph::Graph star(201);
  for (graph::NodeId v = 1; v < 201; ++v) star.add_edge(0, v);
  // Worker 0 owns exactly the hub (its 200 ports are half of all ports).
  DistributedConfig config;
  config.workers = 2;
  DistributedNetwork mp(star, local::IdStrategy::kSequential, 1, config);
  ASSERT_EQ(mp.partition().last_node(0), 1u);
  mp.set_output_fn([](graph::NodeId v, const local::NodeProgram& p,
                      std::vector<std::uint64_t>& out) {
    const auto& probe = static_cast<const probes::ProbeBase&>(p);
    // Degree-sized row: 200 words for the hub, 1 for each leaf.
    out.assign(v == 0 ? 200 : 1, probe.digest());
  });
  local::Network seq(star, local::IdStrategy::kSequential, 1);
  seq.set_output_fn([](graph::NodeId v, const local::NodeProgram& p,
                       std::vector<std::uint64_t>& out) {
    const auto& probe = static_cast<const probes::ProbeBase&>(p);
    out.assign(v == 0 ? 200 : 1, probe.digest());
  });
  EXPECT_EQ(mp.run(probe_factory(), 100), seq.run(probe_factory(), 100));
  for (graph::NodeId v = 0; v < 201; ++v) {
    ASSERT_EQ(mp.outputs().row(v).size(), seq.outputs().row(v).size()) << v;
    EXPECT_EQ(mp.outputs().row(v)[0], seq.outputs().row(v)[0]) << v;
  }
}

TEST(DistributedNetwork, TransportKnobsReachTheExecutor) {
  // --halo-words / --gather-words are the escape hatch the overflow
  // messages name; they must parse and actually relax the reservations.
  const char* argv[] = {"x", "--runtime=mp", "--workers=2",
                        "--halo-words=1024", "--gather-words=512"};
  const auto config = runtime::runtime_from_options(Options(5, argv));
  EXPECT_EQ(config.halo_words, 1024u);
  EXPECT_EQ(config.gather_words, 512u);
  const auto factory = runtime::make_executor_factory(config);
  const auto g = graph::gen::torus(8, 8);
  const auto exec =
      factory(g, local::IdStrategy::kSequential, 3);
  exec->set_output_fn(probe_output_fn());
  local::Network seq(g, local::IdStrategy::kSequential, 3);
  EXPECT_EQ(probe_digests(*exec), probe_digests(seq));
}

TEST(DistributedNetwork, PartitionStatsExposed) {
  const auto g = graph::gen::torus(16, 16);
  DistributedConfig config;
  config.workers = 4;
  DistributedNetwork net(g, local::IdStrategy::kSequential, 9, config);
  const PartitionStats stats = net.partition().stats();
  EXPECT_EQ(stats.parts, 4u);
  EXPECT_EQ(stats.cut_edges + stats.internal_edges, g.num_edges());
  EXPECT_GT(stats.cut_edges, 0u);
  EXPECT_GE(stats.balance_factor, 1.0);
  EXPECT_LT(stats.balance_factor, 2.0);
}

}  // namespace
}  // namespace ds::dist
