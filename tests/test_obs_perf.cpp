// Tests for the profiling subsystem (PR 9): perf_event_open degradation
// semantics (absent metrics, never zeros), the span perf fields through the
// drain/merge wire codec and the trace/stats exporters, the sampling
// profiler's ring eviction and folded-stack aggregation, and the fleet
// merge of folded profiles through the recorder codec.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"

namespace ds::obs {
namespace {

/// True when this build runs under ThreadSanitizer — the real-sampling test
/// arms SIGPROF, and TSan's signal interception makes its delivery timing
/// unreliable enough to flake.
constexpr bool tsan_build() {
#if defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

std::map<std::string, std::uint64_t> snapshot_by_name(const Metrics& m) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& s : m.snapshot()) out[s.name] = s.value();
  return out;
}

// ---- PerfCounters degradation --------------------------------------------

TEST(PerfCounters, SimulatedRefusalDegradesWithReason) {
  for (const int err : {EACCES, ENOSYS}) {
    const PerfCounters perf(err);
    EXPECT_FALSE(perf.hardware());
    EXPECT_NE(perf.fallback_reason().find(err == EACCES ? "EACCES" : "ENOSYS"),
              std::string::npos)
        << perf.fallback_reason();
    // The fallback sample still carries thread CPU time; the hardware
    // fields stay at the sentinel, never zero.
    const PerfSample s = perf.sample();
    EXPECT_EQ(s.cycles, kPerfUnavailable);
    EXPECT_EQ(s.instructions, kPerfUnavailable);
    EXPECT_EQ(s.cache_misses, kPerfUnavailable);
  }
}

TEST(PerfCounters, PermissionRefusalNamesTheParanoidKnob) {
  const PerfCounters perf(EACCES);
  EXPECT_NE(perf.fallback_reason().find("perf_event_paranoid"),
            std::string::npos)
      << perf.fallback_reason();
}

TEST(PhasePerf, FallbackRegistersNoHardwareMetricNames) {
  Metrics m;
  const PerfCounters perf(EACCES);
  PhasePerf pp(m, perf, {Phase::kSend, Phase::kRound});
  const PerfSample a = perf.sample();
  const PerfSample b = perf.sample();
  const SpanPerf span = pp.account(Phase::kSend, a, b);
  // The absent-not-zero contract: under fallback the hardware names must
  // not exist at all — a dashboard seeing `perf.send.cycles 0` would read
  // it as a measured zero.
  const auto snap = snapshot_by_name(m);
  EXPECT_EQ(snap.count("perf.send.cycles"), 0u);
  EXPECT_EQ(snap.count("perf.send.instructions"), 0u);
  EXPECT_EQ(snap.count("perf.round.cycles"), 0u);
  ASSERT_EQ(snap.count("perf.hardware"), 1u);
  EXPECT_EQ(snap.at("perf.hardware"), 0u);
  // The software fallback is still accounted.
  EXPECT_EQ(snap.count("perf.send.task_clock_ns"), 1u);
  EXPECT_EQ(snap.count("perf.send.ctx_switches"), 1u);
  // And the span deltas stay at the sentinel for the exporters.
  EXPECT_EQ(span.cycles, kPerfUnavailable);
  EXPECT_EQ(span.instructions, kPerfUnavailable);
}

TEST(PhasePerf, HardwarePathAccountsMonotoneDeltas) {
  const PerfCounters perf;
  if (!perf.hardware()) {
    GTEST_SKIP() << "perf_event_open unavailable: " << perf.fallback_reason();
  }
  Metrics m;
  PhasePerf pp(m, perf, {Phase::kSend});
  const PerfSample a = perf.sample();
  // Burn some cycles so the delta is visibly nonzero.
  volatile std::uint64_t x = 1;
  for (int i = 0; i < 100000; ++i) x = x * 2654435761u + 1;
  const PerfSample b = perf.sample();
  const SpanPerf span = pp.account(Phase::kSend, a, b);
  EXPECT_NE(span.cycles, kPerfUnavailable);
  EXPECT_GT(span.instructions, 0u);
  const auto snap = snapshot_by_name(m);
  ASSERT_EQ(snap.count("perf.send.cycles"), 1u);
  EXPECT_GT(snap.at("perf.send.instructions"), 0u);
  EXPECT_EQ(snap.at("perf.hardware"), 1u);
}

// ---- span perf fields through the wire codec ------------------------------

TEST(Recorder, SpanPerfDeltasSurviveDrainAndMerge) {
  Recorder a;
  a.add_span(Phase::kSend, /*round=*/1, /*ts_us=*/10, /*dur_us=*/5,
             /*cycles=*/1000, /*instructions=*/2500);
  a.add_span(Phase::kShip, /*round=*/1, /*ts_us=*/15, /*dur_us=*/3);
  const std::vector<std::uint64_t> words = a.drain_words();
  Recorder b;
  b.merge_words(words.data(), words.size());
  const auto events = b.ordered_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].cycles, 1000u);
  EXPECT_EQ(events[0].instructions, 2500u);
  EXPECT_EQ(events[1].cycles, kPerfUnavailable);
  EXPECT_EQ(events[1].instructions, kPerfUnavailable);
}

TEST(Recorder, TraceJsonCarriesPerfArgsOrExplicitUnavailable) {
  Recorder rec;
  rec.add_span(Phase::kSend, 1, 10, 5, /*cycles=*/2000, /*instructions=*/5000);
  rec.add_span(Phase::kShip, 1, 15, 3);
  std::ostringstream out;
  rec.write_trace_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"cycles\": 2000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"instructions\": 5000"), std::string::npos);
  EXPECT_NE(json.find("\"ipc\": 2.500"), std::string::npos);
  // The no-counter span must say so explicitly, not claim zero cycles.
  EXPECT_NE(json.find("\"perf\": \"unavailable\""), std::string::npos);
}

TEST(Recorder, StatsTableDerivesIpcAndShareColumns) {
  Recorder rec;
  Metrics& m = rec.metrics();
  m.histogram("phase.send.us").record(75);
  m.histogram("phase.round.us").record(100);
  m.counter("perf.send.cycles").add(10000);
  m.counter("perf.send.instructions").add(25000);
  m.counter("perf.send.cache_refs").add(400);
  m.counter("perf.send.cache_misses").add(100);
  std::ostringstream out;
  rec.write_stats_table(out);
  const std::string table = out.str();
  EXPECT_NE(table.find("share"), std::string::npos) << table;
  EXPECT_NE(table.find("75.0%"), std::string::npos) << table;
  EXPECT_NE(table.find("ipc"), std::string::npos);
  EXPECT_NE(table.find("2.500"), std::string::npos);   // 25000 / 10000
  EXPECT_NE(table.find("25.00%"), std::string::npos);  // 100 / 400 misses
}

// ---- SampledProfiler ring -------------------------------------------------

/// Builds a synthetic leaf-first stack of fake pcs; values are well outside
/// any mapped object so they symbolize to raw hex (deterministic).
std::vector<void*> fake_stack(std::uintptr_t leaf) {
  return {reinterpret_cast<void*>(leaf),
          reinterpret_cast<void*>(std::uintptr_t{0x1000})};
}

TEST(SampledProfiler, RingEvictsOldestAndCountsDrops) {
  SampledProfiler::Options opts;
  opts.ring_capacity = 4;
  SampledProfiler prof(opts);
  for (std::uintptr_t i = 0; i < 10; ++i) {
    const auto stack = fake_stack(0x100000 + i * 0x10);
    prof.record_sample(stack.data(), stack.size());
  }
  EXPECT_EQ(prof.samples(), 10u);
  EXPECT_EQ(prof.dropped(), 6u);
  const auto folded = prof.drain_folded("");
  std::uint64_t total = 0;
  for (const auto& [stack, count] : folded) total += count;
  EXPECT_EQ(total, 4u);  // only the ring capacity is retained
  // The retained samples are the newest four (0x100060..0x100090).
  std::ostringstream out;
  SampledProfiler::write_folded(out, folded);
  EXPECT_NE(out.str().find("0x100090"), std::string::npos) << out.str();
  EXPECT_EQ(out.str().find("0x100000"), std::string::npos) << out.str();
  // Drain cleared the ring: nothing left to fold, drop counter reset.
  EXPECT_TRUE(prof.drain_folded("").empty());
  EXPECT_EQ(prof.dropped(), 0u);
}

TEST(SampledProfiler, FoldAggregatesIdenticalStacksRootFirst) {
  SampledProfiler prof;
  const auto stack = fake_stack(0x200000);
  for (int i = 0; i < 3; ++i) prof.record_sample(stack.data(), stack.size());
  const auto folded = prof.collect_folded("rank:7");
  ASSERT_EQ(folded.size(), 1u);
  // Leaf-first capture renders root-first: prefix;root;leaf.
  EXPECT_EQ(folded.begin()->first, "rank:7;0x1000;0x200000");
  EXPECT_EQ(folded.begin()->second, 3u);
  // collect_folded leaves the ring intact.
  EXPECT_EQ(prof.collect_folded("rank:7").begin()->second, 3u);
}

TEST(SampledProfiler, FoldedStacksRideTheRecorderWireCodec) {
  SampledProfiler prof;
  const auto stack = fake_stack(0x300000);
  prof.record_sample(stack.data(), stack.size());
  prof.record_sample(stack.data(), stack.size());

  Recorder rank3;
  rank3.set_lane(3);
  rank3.set_profiler(&prof);
  const std::vector<std::uint64_t> words = rank3.drain_words();
  // Draining absorbed (and cleared) the profiler ring.
  EXPECT_TRUE(prof.collect_folded("").empty());

  Recorder rank0;
  rank0.merge_words(words.data(), words.size());
  rank0.merge_folded("rank:0;0x1000;0xabc", 5);
  ASSERT_EQ(rank0.folded().size(), 2u);
  EXPECT_EQ(rank0.folded().at("rank:3;0x1000;0x300000"), 2u);
  std::ostringstream out;
  rank0.write_folded(out);
  EXPECT_EQ(out.str(),
            "rank:0;0x1000;0xabc 5\nrank:3;0x1000;0x300000 2\n");
}

TEST(SampledProfiler, DrainedBlockWithoutProfilerCarriesNoFoldedSection) {
  Recorder a;
  a.add_span(Phase::kRound, 1, 0, 10);
  const std::vector<std::uint64_t> words = a.drain_words();
  Recorder b;
  b.merge_words(words.data(), words.size());
  EXPECT_TRUE(b.folded().empty());
  EXPECT_EQ(b.ordered_events().size(), 1u);
}

TEST(SampledProfiler, RealSamplingCapturesThisTestFrame) {
  if (tsan_build()) {
    GTEST_SKIP() << "SIGPROF delivery is unreliable under TSan";
  }
  SampledProfiler::Options opts;
  opts.interval_us = 500;
  SampledProfiler prof(opts);
  if (!prof.start()) {
    GTEST_SKIP() << "sampling unavailable: " << prof.error();
  }
  // Busy-spin on CPU until the ITIMER_PROF timer has fired a few times;
  // bounded by iterations, not wall time, so a loaded machine cannot hang
  // the test.
  volatile std::uint64_t x = 1;
  for (std::uint64_t i = 0; i < 4'000'000'000ull && prof.samples() < 3; ++i) {
    x = x * 2654435761u + i;
  }
  prof.stop();
  ASSERT_GT(prof.samples(), 0u) << "timer never fired";
  const auto folded = prof.drain_folded("rank:0");
  ASSERT_FALSE(folded.empty());
  for (const auto& [stack, count] : folded) {
    EXPECT_EQ(stack.rfind("rank:0;", 0), 0u) << stack;
    EXPECT_GT(count, 0u);
  }
}

TEST(SampledProfiler, SecondConcurrentStartIsRefusedWithReason) {
  if (tsan_build()) {
    GTEST_SKIP() << "SIGPROF delivery is unreliable under TSan";
  }
  SampledProfiler first;
  if (!first.start()) {
    GTEST_SKIP() << "sampling unavailable: " << first.error();
  }
  SampledProfiler second;
  EXPECT_FALSE(second.start());
  EXPECT_NE(second.error().find("already owns SIGPROF"), std::string::npos);
  first.stop();
  // With the timer released, a fresh start succeeds again.
  EXPECT_TRUE(second.start());
  second.stop();
}

}  // namespace
}  // namespace ds::obs
