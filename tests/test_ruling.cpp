// Tests for (α, β)-ruling sets: the verifier, the power-graph MIS
// construction, the deterministic bitwise construction, and the
// message-passing bit-competition program behind the algorithm registry.

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "graph/generators.hpp"
#include "local/ids.hpp"
#include "ruling/ruling_program.hpp"
#include "ruling/ruling_set.hpp"
#include "support/rng.hpp"

namespace ds::ruling {
namespace {

std::vector<std::uint64_t> sequential_ids(std::size_t n) {
  std::vector<std::uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(Verifier, MisIsATwoOneRulingSet) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(is_ruling_set(g, {true, false, true, false}, 2, 1));
  // {0} does not dominate node 3 at radius 1.
  EXPECT_FALSE(is_ruling_set(g, {true, false, false, false}, 2, 1));
  // ...but does at radius 3.
  EXPECT_TRUE(is_ruling_set(g, {true, false, false, false}, 2, 3));
  // Adjacent members violate alpha = 2.
  EXPECT_FALSE(is_ruling_set(g, {true, true, false, false}, 2, 3));
}

TEST(Verifier, AlphaThreeSeparation) {
  const auto g = graph::gen::cycle(6);
  // Nodes 0 and 2 are at distance 2: fine for alpha 2, not for alpha 3.
  std::vector<bool> s(6, false);
  s[0] = s[2] = true;
  EXPECT_TRUE(is_ruling_set(g, s, 2, 2));
  EXPECT_FALSE(is_ruling_set(g, s, 3, 2));
  // Antipodal nodes 0 and 3 are at distance 3.
  std::vector<bool> t(6, false);
  t[0] = t[3] = true;
  EXPECT_TRUE(is_ruling_set(g, t, 3, 2));
}

TEST(Verifier, EmptySetOnlyRulesEmptyGraph) {
  graph::Graph g(3);
  EXPECT_FALSE(is_ruling_set(g, {false, false, false}, 2, 5));
  graph::Graph empty(0);
  EXPECT_TRUE(is_ruling_set(empty, {}, 2, 1));
}

class PowerMisSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PowerMisSweep, ProducesVerifiedRulingSet) {
  const auto [n, alpha] = GetParam();
  Rng rng(n * alpha);
  const auto g = graph::gen::gnp(n, 4.0 / static_cast<double>(n), rng);
  local::CostMeter meter;
  const auto result = ruling_set_via_power_mis(g, alpha, 5, &meter);
  EXPECT_EQ(result.alpha, alpha);
  EXPECT_EQ(result.beta, alpha - 1);
  EXPECT_TRUE(is_ruling_set(g, result.in_set, alpha, alpha - 1));
  if (alpha > 2) {
    EXPECT_GT(meter.charged_rounds(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, PowerMisSweep,
                         ::testing::Values(std::make_tuple(60, 2),
                                           std::make_tuple(60, 3),
                                           std::make_tuple(120, 4),
                                           std::make_tuple(120, 5)));

TEST(Bitwise, ProducesTwoBetaRulingSet) {
  for (std::size_t n : {16, 64, 200}) {
    Rng rng(n);
    const auto g = graph::gen::gnp(n, 3.0 / static_cast<double>(n), rng);
    local::CostMeter meter;
    const auto result = ruling_set_bitwise(g, sequential_ids(n), &meter);
    EXPECT_EQ(result.alpha, 2u);
    EXPECT_TRUE(is_ruling_set(g, result.in_set, 2, result.beta));
    EXPECT_GT(meter.charged_rounds(), 0.0);
  }
}

TEST(Bitwise, BetaTracksBitWidthNotUidMagnitude) {
  // Shifting all UIDs up by a constant must not break the construction.
  Rng rng(77);
  const auto g = graph::gen::random_regular(64, 4, rng);
  std::vector<std::uint64_t> ids = sequential_ids(64);
  for (auto& id : ids) id += (1ull << 40);
  const auto result = ruling_set_bitwise(g, ids);
  EXPECT_TRUE(is_ruling_set(g, result.in_set, 2, result.beta));
  EXPECT_LE(result.beta, 41u + 1u);
}

TEST(Bitwise, PathGraphKeepsIndependence) {
  graph::Graph g(8);
  for (graph::NodeId v = 0; v + 1 < 8; ++v) g.add_edge(v, v + 1);
  const auto result = ruling_set_bitwise(g, sequential_ids(8));
  for (const graph::Edge& e : g.edges()) {
    EXPECT_FALSE(result.in_set[e.u] && result.in_set[e.v]);
  }
}

TEST(Bitwise, CliqueSelectsExactlyOne) {
  const auto g = graph::gen::complete(17);
  const auto result = ruling_set_bitwise(g, sequential_ids(17));
  std::size_t count = 0;
  for (bool b : result.in_set) count += b ? 1 : 0;
  EXPECT_EQ(count, 1u);
}

TEST(Bitwise, AdversarialIdOrdersStillVerify) {
  Rng rng(5);
  const auto g = graph::gen::random_regular(80, 6, rng);
  std::vector<std::uint64_t> ids = sequential_ids(80);
  for (int trial = 0; trial < 10; ++trial) {
    rng.shuffle(ids);
    const auto result = ruling_set_bitwise(g, ids);
    EXPECT_TRUE(is_ruling_set(g, result.in_set, 2, result.beta));
  }
}

// ---- Message-passing program (registry port) -----------------------------

TEST(Program, RulesAssortedInstances) {
  Rng rng(6);
  for (const graph::Graph& g :
       {graph::gen::gnp(90, 0.08, rng), graph::gen::torus(8, 7),
        graph::gen::barabasi_albert(80, 3, rng), graph::gen::cycle(17)}) {
    const auto outcome = ruling_set_program(g, 1);
    EXPECT_TRUE(is_ruling_set(g, outcome.result.in_set, 2,
                              outcome.result.beta));
    // One round per UID bit, plus none when a drop empties a whole bit.
    EXPECT_LE(outcome.executed_rounds, outcome.result.beta);
  }
}

TEST(Program, AllIdStrategiesVerify) {
  Rng rng(7);
  const auto g = graph::gen::gnp(70, 0.1, rng);
  for (local::IdStrategy ids :
       {local::IdStrategy::kSequential, local::IdStrategy::kRandomPermutation,
        local::IdStrategy::kDegreeDescending}) {
    const auto outcome = ruling_set_program(g, 11, ids);
    EXPECT_TRUE(is_ruling_set(g, outcome.result.in_set, 2,
                              outcome.result.beta));
  }
}

TEST(Program, DegenerateInstances) {
  // Single node: rules itself in zero rounds.
  const auto single = ruling_set_program(graph::Graph(1), 1);
  EXPECT_EQ(single.result.in_set, std::vector<bool>{true});
  EXPECT_EQ(single.executed_rounds, 0u);
  // Empty graph.
  const auto empty = ruling_set_program(graph::Graph(0), 1);
  EXPECT_TRUE(empty.result.in_set.empty());
  // Isolated nodes all rule (no edges to separate them).
  const auto isolated = ruling_set_program(graph::Graph(5), 1);
  for (const bool in : isolated.result.in_set) EXPECT_TRUE(in);
  // Two adjacent nodes: exactly one survives.
  graph::Graph pair(2);
  pair.add_edge(0, 1);
  const auto two = ruling_set_program(pair, 1);
  EXPECT_NE(two.result.in_set[0], two.result.in_set[1]);
}

TEST(Program, DeterministicAcrossRepeats) {
  Rng rng(8);
  const auto g = graph::gen::gnp(60, 0.1, rng);
  const auto a = ruling_set_program(g, 3, local::IdStrategy::kRandomPermutation);
  const auto b = ruling_set_program(g, 3, local::IdStrategy::kRandomPermutation);
  EXPECT_EQ(a.result.in_set, b.result.in_set);
  EXPECT_EQ(a.executed_rounds, b.executed_rounds);
}

}  // namespace
}  // namespace ds::ruling
