// Tests for the parallel execution runtime: the ThreadPool epoch barrier,
// RoundStats accounting, and above all the determinism contract — for a
// fixed (graph, IdStrategy, seed), ParallelNetwork must produce bit-identical
// per-node outputs and round counts to the sequential Network at every
// thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "coloring/randcolor.hpp"
#include "determinism_probe.hpp"
#include "graph/generators.hpp"
#include "local/network.hpp"
#include "local/round_stats.hpp"
#include "mis/mis.hpp"
#include "runtime/parallel_network.hpp"
#include "runtime/select.hpp"
#include "runtime/thread_pool.hpp"
#include "support/check.hpp"

namespace ds::runtime {
namespace {

// ---- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  for (std::size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossEpochs) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int epoch = 0; epoch < 50; ++epoch) {
    pool.parallel_for(10, [&](std::size_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 50u * 45u);
}

TEST(ThreadPool, PropagatesChunkExceptions) {
  for (std::size_t threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](std::size_t i) {
                                     DS_CHECK_MSG(i != 13, "boom");
                                   }),
                 ds::CheckError);
    // The pool must stay usable after a poisoned epoch.
    std::atomic<int> count{0};
    pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 8);
  }
}

// ---- Determinism suite ---------------------------------------------------

// The probe program lives in determinism_probe.hpp, shared with the
// multi-process determinism suite (tests/test_dist.cpp); all four
// (executor, API) combos must produce the same digests.
using probes::probe_factory;

std::vector<std::uint64_t> probe_digests(local::Executor& exec,
                                         std::size_t* rounds = nullptr,
                                         bool legacy = false) {
  const std::size_t r = exec.run(probe_factory(legacy), 100);
  if (rounds != nullptr) *rounds = r;
  std::vector<std::uint64_t> digests(exec.graph().num_nodes());
  for (graph::NodeId v = 0; v < digests.size(); ++v) {
    digests[v] =
        static_cast<const probes::ProbeBase&>(exec.program(v)).digest();
  }
  return digests;
}

void expect_bit_identical(const graph::Graph& g, local::IdStrategy strategy,
                          std::uint64_t seed) {
  local::Network sequential(g, strategy, seed);
  std::size_t seq_rounds = 0;
  const auto expected = probe_digests(sequential, &seq_rounds);
  // The legacy vector API must agree through the adapter too.
  std::size_t legacy_rounds = 0;
  EXPECT_EQ(probe_digests(sequential, &legacy_rounds, /*legacy=*/true),
            expected);
  EXPECT_EQ(legacy_rounds, seq_rounds);
  for (std::size_t threads : {1, 2, 8}) {
    ParallelNetwork parallel(g, strategy, seed, threads);
    EXPECT_EQ(parallel.uids(), sequential.uids());
    std::size_t par_rounds = 0;
    const auto got = probe_digests(parallel, &par_rounds);
    EXPECT_EQ(par_rounds, seq_rounds) << "threads=" << threads;
    EXPECT_EQ(got, expected) << "threads=" << threads;
    std::size_t par_legacy_rounds = 0;
    EXPECT_EQ(probe_digests(parallel, &par_legacy_rounds, /*legacy=*/true),
              expected)
        << "threads=" << threads;
    EXPECT_EQ(par_legacy_rounds, seq_rounds) << "threads=" << threads;
  }
}

TEST(ParallelNetworkDeterminism, Gnp) {
  Rng rng(7);
  const auto g = graph::gen::gnp(400, 0.02, rng);
  expect_bit_identical(g, local::IdStrategy::kRandomPermutation, 11);
}

TEST(ParallelNetworkDeterminism, Torus) {
  const auto g = graph::gen::torus(24, 24);
  expect_bit_identical(g, local::IdStrategy::kSequential, 3);
}

TEST(ParallelNetworkDeterminism, RandomBiregular) {
  Rng rng(5);
  const auto b = graph::gen::random_biregular(150, 300, 6, rng);
  expect_bit_identical(b.unified(), local::IdStrategy::kDegreeDescending, 9);
}

TEST(ParallelNetworkDeterminism, BarabasiAlbertSkew) {
  // Preferential attachment: heavily skewed degrees, the worst case for
  // shard balancing — hub nodes own a large share of all ports.
  Rng rng(13);
  const auto g = graph::gen::barabasi_albert(3000, 4, rng);
  expect_bit_identical(g, local::IdStrategy::kRandomPermutation, 17);
}

TEST(ParallelNetworkDeterminism, StressHundredThousandNodes) {
  // >= 100k nodes: torus 370x370 = 136,900.
  const auto g = graph::gen::torus(370, 370);
  local::Network sequential(g, local::IdStrategy::kSequential, 123);
  const auto expected = probe_digests(sequential);
  ParallelNetwork parallel(g, local::IdStrategy::kSequential, 123, 8);
  EXPECT_EQ(probe_digests(parallel), expected);
}

// Algorithm-level equality through the ExecutorFactory plumbing.
TEST(ParallelNetworkDeterminism, LubyAndTrialColoring) {
  Rng rng(2);
  const auto g = graph::gen::random_regular(512, 8, rng);
  RuntimeConfig config;
  config.kind = RuntimeKind::kParallel;
  config.threads = 4;
  const auto executor = make_executor_factory(config);

  const auto seq_mis = mis::luby(g, 77);
  const auto par_mis = mis::luby(g, 77, nullptr, 10000,
                                 local::IdStrategy::kSequential, executor);
  EXPECT_EQ(par_mis.in_mis, seq_mis.in_mis);
  EXPECT_EQ(par_mis.executed_rounds, seq_mis.executed_rounds);

  const auto seq_col = coloring::randomized_coloring(g, 78);
  const auto par_col = coloring::randomized_coloring(
      g, 78, nullptr, 10000, local::IdStrategy::kSequential, executor);
  EXPECT_EQ(par_col.colors, seq_col.colors);
  EXPECT_EQ(par_col.num_colors, seq_col.num_colors);
  EXPECT_EQ(par_col.executed_rounds, seq_col.executed_rounds);
}

// ---- Executor behavior ---------------------------------------------------

TEST(ParallelNetwork, ThrowsWhenRoundLimitHit) {
  const auto g = graph::gen::cycle(16);
  ParallelNetwork net(g, local::IdStrategy::kSequential, 1, 2);
  EXPECT_THROW(net.run(probe_factory(), 2), ds::CheckError);
}

TEST(ParallelNetwork, CostMeterAndReuse) {
  const auto g = graph::gen::torus(8, 8);
  ParallelNetwork net(g, local::IdStrategy::kSequential, 4, 2);
  local::CostMeter meter;
  const std::size_t r1 = net.run(probe_factory(), 100, &meter);
  EXPECT_EQ(meter.executed_rounds(), r1);
  // Re-running on the same executor must be deterministic too.
  const auto first = probe_digests(net);
  const auto second = probe_digests(net);
  EXPECT_EQ(first, second);
}

TEST(ParallelNetwork, RoundStatsAreExact) {
  // Small 4-regular torus: counts are bounded and predictable modulo the
  // probe's silent-port rule.
  const auto g = graph::gen::torus(6, 6);
  ParallelNetwork net(g, local::IdStrategy::kSequential, 21, 3);
  std::vector<local::RoundStats> stats;
  net.set_stats_sink([&](const local::RoundStats& s) { stats.push_back(s); });
  const std::size_t rounds = net.run(probe_factory(), 100);
  ASSERT_EQ(stats.size(), rounds);
  for (std::size_t r = 0; r < stats.size(); ++r) {
    EXPECT_EQ(stats[r].round, r);
    EXPECT_GE(stats[r].wall_seconds, 0.0);
    EXPECT_LE(stats[r].live_nodes, g.num_nodes());
    // Every message of the probe carries exactly 3 words.
    EXPECT_EQ(stats[r].payload_words, 3 * stats[r].messages);
    EXPECT_LE(stats[r].messages, 2 * g.num_edges());
  }
  EXPECT_EQ(stats[0].live_nodes, g.num_nodes());

  // Cross-check message totals against the sequential reference by
  // re-deriving them from a sequential run's deliveries... the probe is
  // deterministic, so totals must match a second parallel run exactly.
  std::vector<local::RoundStats> again;
  net.set_stats_sink([&](const local::RoundStats& s) { again.push_back(s); });
  net.run(probe_factory(), 100);
  ASSERT_EQ(again.size(), stats.size());
  for (std::size_t r = 0; r < stats.size(); ++r) {
    EXPECT_EQ(again[r].messages, stats[r].messages);
    EXPECT_EQ(again[r].payload_words, stats[r].payload_words);
    EXPECT_EQ(again[r].live_nodes, stats[r].live_nodes);
  }
}

TEST(RoundStats, SequentialAndParallelExecutorsAgree) {
  // The stats hook is part of the Executor interface now: the sequential
  // Network must report the same per-round message/payload/live counts as
  // the parallel executor for the same deterministic program.
  Rng rng(31);
  const auto g = graph::gen::gnp(200, 0.03, rng);
  local::Network seq(g, local::IdStrategy::kSequential, 8);
  ParallelNetwork par(g, local::IdStrategy::kSequential, 8, 3);
  std::vector<local::RoundStats> seq_stats;
  std::vector<local::RoundStats> par_stats;
  seq.set_stats_sink([&](const local::RoundStats& s) { seq_stats.push_back(s); });
  par.set_stats_sink([&](const local::RoundStats& s) { par_stats.push_back(s); });
  const std::size_t seq_rounds = seq.run(probe_factory(), 100);
  const std::size_t par_rounds = par.run(probe_factory(), 100);
  EXPECT_EQ(seq_rounds, par_rounds);
  ASSERT_EQ(seq_stats.size(), seq_rounds);
  ASSERT_EQ(par_stats.size(), par_rounds);
  for (std::size_t r = 0; r < seq_stats.size(); ++r) {
    EXPECT_EQ(seq_stats[r].round, r);
    EXPECT_EQ(par_stats[r].round, r);
    EXPECT_EQ(seq_stats[r].live_nodes, par_stats[r].live_nodes) << r;
    EXPECT_EQ(seq_stats[r].messages, par_stats[r].messages) << r;
    EXPECT_EQ(seq_stats[r].payload_words, par_stats[r].payload_words) << r;
  }
}

TEST(RuntimeSelect, ParsesOptions) {
  const char* argv_seq[] = {"x"};
  EXPECT_EQ(runtime_from_options(Options(1, argv_seq)).kind,
            RuntimeKind::kSequential);

  const char* argv_par[] = {"x", "--runtime=parallel", "--threads=3"};
  const auto config = runtime_from_options(Options(3, argv_par));
  EXPECT_EQ(config.kind, RuntimeKind::kParallel);
  EXPECT_EQ(config.threads, 3u);
  EXPECT_EQ(runtime_description(config), "parallel(3 threads)");
  EXPECT_TRUE(static_cast<bool>(make_executor_factory(config)));
  EXPECT_FALSE(static_cast<bool>(make_executor_factory(RuntimeConfig{})));

  const char* argv_mp[] = {"x", "--runtime=mp", "--workers=2"};
  const auto mp_config = runtime_from_options(Options(3, argv_mp));
  EXPECT_EQ(mp_config.kind, RuntimeKind::kMultiProcess);
  EXPECT_EQ(mp_config.workers, 2u);
  EXPECT_EQ(runtime_description(mp_config), "mp(2 workers)");
  EXPECT_TRUE(static_cast<bool>(make_executor_factory(mp_config)));

  const char* argv_bad[] = {"x", "--runtime=warp"};
  EXPECT_THROW(runtime_from_options(Options(2, argv_bad)), ds::CheckError);
}

}  // namespace
}  // namespace ds::runtime
