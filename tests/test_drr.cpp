// Tests for the two degree-rank reduction procedures (Sections 2.2, 2.3)
// against the trajectory bounds of Lemmas 2.4 and 2.6.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "graph/generators.hpp"
#include "splitting/degree_rank_reduction.hpp"
#include "splitting/drr2.hpp"
#include "support/rng.hpp"

namespace ds::splitting {
namespace {

orient::SplitConfig euler_config(double eps) {
  orient::SplitConfig config;
  config.eps = eps;
  return config;
}

TEST(Drr1, OneIterationRoughlyHalvesBothSides) {
  Rng rng(1);
  const auto b = graph::gen::random_biregular(64, 128, 32, rng);
  local::CostMeter meter;
  const auto reduced = drr1_iteration(b, euler_config(0.2), rng, &meter);
  // Euler orientation: every node keeps between (d-1)/2 and (d+1)/2 edges.
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    const double d = static_cast<double>(b.left_degree(u));
    EXPECT_GE(reduced.left_degree(u), std::floor((d - 1.0) / 2.0));
    EXPECT_LE(reduced.left_degree(u), std::ceil((d + 1.0) / 2.0));
  }
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    const double d = static_cast<double>(b.right_degree(v));
    EXPECT_LE(reduced.right_degree(v), std::ceil((d + 1.0) / 2.0));
  }
  EXPECT_GT(meter.breakdown().at("degree-split"), 0.0);
}

class Drr1Trajectory
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(Drr1Trajectory, Lemma24BoundsHold) {
  const auto [k, eps] = GetParam();
  Rng rng(31 * k);
  const auto b = graph::gen::random_biregular(64, 64, 48, rng);
  DrrTrace trace;
  degree_rank_reduction(b, k, euler_config(eps), rng, nullptr, &trace);
  ASSERT_EQ(trace.min_left_degree.size(), k + 1);
  for (std::size_t i = 0; i <= k; ++i) {
    const double delta_bound =
        drr1_delta_bound(b.min_left_degree(), eps, i);
    const double rank_bound = drr1_rank_bound(b.rank(), eps, i);
    EXPECT_GT(static_cast<double>(trace.min_left_degree[i]), delta_bound)
        << "iteration " << i;
    EXPECT_LT(static_cast<double>(trace.rank[i]), rank_bound)
        << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Drr1Trajectory,
    ::testing::Values(std::make_tuple(1, 1.0 / 3.0), std::make_tuple(2, 0.25),
                      std::make_tuple(3, 1.0 / 3.0),
                      std::make_tuple(4, 0.2)));

TEST(Drr1, BoundFormulas) {
  EXPECT_NEAR(drr1_delta_bound(100, 0.0, 1), 48.0, 1e-12);
  EXPECT_NEAR(drr1_rank_bound(100, 0.0, 1), 53.0, 1e-12);
  EXPECT_NEAR(drr1_delta_bound(64, 1.0 / 3.0, 0), 62.0, 1e-12);
}

TEST(Drr2, RightDegreesHalveExactly) {
  Rng rng(2);
  const auto b = graph::gen::random_biregular(32, 64, 24, rng);
  const auto reduced = drr2_iteration(b, euler_config(0.01), rng, nullptr);
  for (graph::RightId v = 0; v < b.num_right(); ++v) {
    const std::size_t before = b.right_degree(v);
    EXPECT_EQ(reduced.right_degree(v), (before + 1) / 2) << "v=" << v;
  }
}

TEST(Drr2, RankNeverDropsBelowOne) {
  Rng rng(3);
  const auto b = graph::gen::random_left_regular(48, 96, 24, rng);
  const std::size_t k = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(b.rank()))));
  DrrTrace trace;
  const auto reduced = drr2(b, k + 3, euler_config(0.01), rng, nullptr, &trace);
  EXPECT_EQ(reduced.rank(), 1u);
  // Lemma 2.6: after ⌈log r⌉ iterations the rank is exactly 1 and it stays
  // there (a degree-1 right node keeps its single edge).
  EXPECT_EQ(trace.rank[k], 1u);
  for (std::size_t i = 0; i < trace.rank.size(); ++i) {
    EXPECT_GE(trace.rank[i], 1u);
    EXPECT_LT(static_cast<double>(trace.rank[i]),
              drr2_rank_bound(b.rank(), i))
        << "iteration " << i;
  }
}

TEST(Drr2, LeftDegreesLoseAtMostHalfPlusOne) {
  Rng rng(4);
  const auto b = graph::gen::random_biregular(40, 80, 30, rng);
  const auto reduced = drr2_iteration(b, euler_config(0.001), rng, nullptr);
  for (graph::LeftId u = 0; u < b.num_left(); ++u) {
    const double d = static_cast<double>(b.left_degree(u));
    // Each u loses at most half of its pair-edges plus the discrepancy:
    // kept >= (d - disc)/2 with disc <= 1 under the Euler substrate
    // (ceil of (d-1)/2 kept at worst, minus one more for odd pairings).
    EXPECT_GE(static_cast<double>(reduced.left_degree(u)), d / 2.0 - 1.0);
  }
}

TEST(Drr2, PreservesEdgeOwnership) {
  // Every surviving edge must exist in the original instance.
  Rng rng(5);
  const auto b = graph::gen::random_left_regular(20, 40, 10, rng);
  const auto reduced = drr2_iteration(b, euler_config(0.1), rng, nullptr);
  for (graph::EdgeId e = 0; e < reduced.num_edges(); ++e) {
    const auto [u, v] = reduced.endpoints(e);
    EXPECT_TRUE(b.has_edge(u, v));
  }
}

TEST(Drr2, DegreeOneRightNodesKeepTheirEdge) {
  graph::BipartiteGraph b(3, 1);
  b.add_edge(0, 0);  // v0 has degree 3: one pair + one unpaired
  b.add_edge(1, 0);
  b.add_edge(2, 0);
  Rng rng(6);
  auto reduced = drr2_iteration(b, euler_config(0.1), rng, nullptr);
  EXPECT_EQ(reduced.right_degree(0), 2u);
  reduced = drr2_iteration(reduced, euler_config(0.1), rng, nullptr);
  EXPECT_EQ(reduced.right_degree(0), 1u);
  reduced = drr2_iteration(reduced, euler_config(0.1), rng, nullptr);
  EXPECT_EQ(reduced.right_degree(0), 1u);  // never drops to 0
}

}  // namespace
}  // namespace ds::splitting
