// Tests for the TCP wire framing (net/frame.hpp): header/payload encode +
// incremental reassembly roundtrips, partial and chunked delivery, corrupt
// headers, and the EINTR/short-read/short-write resilience of the blocking
// read_full/write_full loops over a real socketpair.

#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "support/check.hpp"

namespace ds::net {
namespace {

std::vector<std::uint64_t> words_iota(std::size_t n, std::uint64_t start) {
  std::vector<std::uint64_t> w(n);
  std::iota(w.begin(), w.end(), start);
  return w;
}

TEST(Frame, AppendAndReassembleRoundtrip) {
  const auto payload = words_iota(17, 1000);
  std::vector<char> bytes;
  append_frame(bytes, FrameType::kHalo, 42, payload.data(), payload.size());
  EXPECT_EQ(bytes.size(),
            sizeof(FrameHeader) + payload.size() * sizeof(std::uint64_t));

  FrameReader reader;
  const auto [buf, capacity] = reader.recv_buffer(bytes.size());
  ASSERT_GE(capacity, bytes.size());
  std::memcpy(buf, bytes.data(), bytes.size());
  reader.commit(bytes.size());

  Frame frame;
  ASSERT_TRUE(reader.next_frame(frame));
  EXPECT_EQ(frame.header.magic, kFrameMagic);
  EXPECT_EQ(frame.header.type, static_cast<std::uint32_t>(FrameType::kHalo));
  EXPECT_EQ(frame.header.seq, 42u);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_FALSE(reader.next_frame(frame));
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(Frame, EmptyPayloadAndBackToBackFrames) {
  std::vector<char> bytes;
  append_frame(bytes, FrameType::kWelcome, 1, nullptr, 0);
  const auto payload = words_iota(5, 7);
  append_frame(bytes, FrameType::kLive, 2, payload.data(), payload.size());
  append_frame(bytes, FrameType::kGather, 3, nullptr, 0);

  FrameReader reader;
  const auto [buf, capacity] = reader.recv_buffer(bytes.size());
  std::memcpy(buf, bytes.data(), bytes.size());
  reader.commit(bytes.size());

  Frame frame;
  ASSERT_TRUE(reader.next_frame(frame));
  EXPECT_EQ(frame.header.type,
            static_cast<std::uint32_t>(FrameType::kWelcome));
  EXPECT_TRUE(frame.payload.empty());
  ASSERT_TRUE(reader.next_frame(frame));
  EXPECT_EQ(frame.header.type, static_cast<std::uint32_t>(FrameType::kLive));
  EXPECT_EQ(frame.payload, payload);
  ASSERT_TRUE(reader.next_frame(frame));
  EXPECT_EQ(frame.header.type,
            static_cast<std::uint32_t>(FrameType::kGather));
  EXPECT_FALSE(reader.next_frame(frame));
}

TEST(Frame, ByteAtATimeDelivery) {
  // The reassembler must survive arbitrarily mean packetization: one byte
  // per recv, a frame boundary never aligned with a delivery boundary.
  const auto p1 = words_iota(9, 3);
  const auto p2 = words_iota(2, 90);
  std::vector<char> bytes;
  append_frame(bytes, FrameType::kHalo, 7, p1.data(), p1.size());
  append_frame(bytes, FrameType::kLive, 8, p2.data(), p2.size());

  FrameReader reader;
  Frame frame;
  std::size_t frames_seen = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const auto [buf, capacity] = reader.recv_buffer(1);
    ASSERT_GE(capacity, 1u);
    buf[0] = bytes[i];
    reader.commit(1);
    while (reader.next_frame(frame)) {
      ++frames_seen;
      if (frames_seen == 1) {
        EXPECT_EQ(frame.header.seq, 7u);
        EXPECT_EQ(frame.payload, p1);
      } else {
        EXPECT_EQ(frame.header.seq, 8u);
        EXPECT_EQ(frame.payload, p2);
      }
    }
  }
  EXPECT_EQ(frames_seen, 2u);
}

TEST(Frame, PartialFrameStaysPending) {
  const auto payload = words_iota(4, 0);
  std::vector<char> bytes;
  append_frame(bytes, FrameType::kHalo, 1, payload.data(), payload.size());
  FrameReader reader;
  Frame frame;
  // Everything but the last byte: not parseable yet, bytes stay buffered.
  auto [buf, capacity] = reader.recv_buffer(bytes.size());
  std::memcpy(buf, bytes.data(), bytes.size() - 1);
  reader.commit(bytes.size() - 1);
  EXPECT_FALSE(reader.next_frame(frame));
  EXPECT_EQ(reader.pending_bytes(), bytes.size() - 1);
  auto [buf2, capacity2] = reader.recv_buffer(1);
  buf2[0] = bytes.back();
  reader.commit(1);
  ASSERT_TRUE(reader.next_frame(frame));
  EXPECT_EQ(frame.payload, payload);
}

TEST(Frame, BadMagicThrows) {
  std::vector<char> bytes;
  append_frame(bytes, FrameType::kHalo, 1, nullptr, 0);
  bytes[0] = 'X';  // corrupt the magic
  FrameReader reader;
  const auto [buf, capacity] = reader.recv_buffer(bytes.size());
  std::memcpy(buf, bytes.data(), bytes.size());
  reader.commit(bytes.size());
  Frame frame;
  EXPECT_THROW((void)reader.next_frame(frame), ds::CheckError);
}

TEST(Frame, PackStringRoundtrip) {
  for (const std::string& s :
       {std::string(""), std::string("x"), std::string("halo overflow"),
        std::string(300, 'q')}) {
    const auto words = pack_string(s);
    EXPECT_EQ(unpack_string(words.data(), words.size()), s);
  }
  // A corrupt length claim must not read out of bounds.
  std::vector<std::uint64_t> lying = {1000, 0x4141414141414141ull};
  EXPECT_EQ(unpack_string(lying.data(), lying.size()).size(), 8u);
}

// ---- Blocking I/O over a real socketpair ---------------------------------

TEST(FrameIo, ReadWriteFullSurviveShortTransfers) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket a(fds[0]);
  Socket b(fds[1]);
  // Small kernel buffers force many short writes and short reads.
  set_buffer_sizes(a.fd(), 8 * 1024, 8 * 1024);
  set_buffer_sizes(b.fd(), 8 * 1024, 8 * 1024);

  const std::size_t bytes = 2 * 1024 * 1024;
  std::vector<char> sent(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    sent[i] = static_cast<char>((i * 131) & 0xFF);
  }
  std::thread writer([&] {
    write_full(a.fd(), sent.data(), sent.size(), "test write");
  });
  std::vector<char> got(bytes, 0);
  read_full(b.fd(), got.data(), got.size(), "test read");
  writer.join();
  EXPECT_EQ(got, sent);
}

TEST(FrameIo, WriteAndReadFrameOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket a(fds[0]);
  Socket b(fds[1]);
  const auto payload = words_iota(1000, 5);
  std::thread writer([&] {
    write_frame(a.fd(), FrameType::kOutputs, 99, payload.data(),
                payload.size(), "test frame write");
  });
  const Frame frame = read_frame(b.fd(), "test frame read");
  writer.join();
  EXPECT_EQ(frame.header.type,
            static_cast<std::uint32_t>(FrameType::kOutputs));
  EXPECT_EQ(frame.header.seq, 99u);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameIo, ReadFullReportsEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket a(fds[0]);
  Socket b(fds[1]);
  const char byte = 1;
  write_full(a.fd(), &byte, 1, "test");
  a.reset();  // close: the reader gets 1 byte then EOF
  char buf[2];
  try {
    read_full(b.fd(), buf, 2, "eof test");
    FAIL() << "expected EOF to throw";
  } catch (const ds::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("closed by peer"),
              std::string::npos);
  }
}

void sigusr1_noop(int) {}

TEST(FrameIo, ReadWriteFullResumeAfterEintr) {
  // Install a non-SA_RESTART handler so blocking reads/writes genuinely
  // return EINTR, then pepper the I/O thread with signals mid-transfer.
  struct sigaction sa{};
  struct sigaction old{};
  sa.sa_handler = sigusr1_noop;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket a(fds[0]);
  Socket b(fds[1]);
  set_buffer_sizes(a.fd(), 8 * 1024, 8 * 1024);
  set_buffer_sizes(b.fd(), 8 * 1024, 8 * 1024);

  const std::size_t bytes = 1024 * 1024;
  std::vector<char> sent(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    sent[i] = static_cast<char>((i * 29) & 0xFF);
  }
  const pthread_t reader_thread = ::pthread_self();
  std::thread writer([&] {
    // Interleave slow chunked writes with signals at the reader, so its
    // blocked read()s wake with EINTR repeatedly.
    const std::size_t chunk = 64 * 1024;
    for (std::size_t off = 0; off < bytes; off += chunk) {
      ::pthread_kill(reader_thread, SIGUSR1);
      write_full(a.fd(), sent.data() + off, std::min(chunk, bytes - off),
                 "eintr test write");
      ::pthread_kill(reader_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<char> got(bytes, 0);
  read_full(b.fd(), got.data(), got.size(), "eintr test read");
  writer.join();
  EXPECT_EQ(got, sent);
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
}

}  // namespace
}  // namespace ds::net
