// Tests for the Section 1.2/2.5/4 reductions: graph doubling, the Figure 1
// sinkless reduction, uniform splitting, recursive coloring, and MIS.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "coloring/reduce.hpp"
#include "coloring/verify.hpp"
#include "orient/sinkless.hpp"
#include "reductions/coloring_via_splitting.hpp"
#include "reductions/graph_to_bipartite.hpp"
#include "reductions/mis_via_splitting.hpp"
#include "reductions/sinkless.hpp"
#include "reductions/uniform_splitting.hpp"
#include "splitting/solver.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ds::reductions {
namespace {

TEST(GraphToBipartite, DoubledShape) {
  Rng rng(1);
  const auto g = graph::gen::random_regular(20, 4, rng);
  const auto b = graph_to_bipartite(g);
  EXPECT_EQ(b.num_left(), g.num_nodes());
  EXPECT_EQ(b.num_right(), g.num_nodes());
  EXPECT_EQ(b.num_edges(), 2 * g.num_edges());
  // δ_B = δ_G and r_B = Δ_G.
  EXPECT_EQ(b.min_left_degree(), g.min_degree());
  EXPECT_EQ(b.rank(), g.max_degree());
}

TEST(GraphToBipartite, WeakSplittingTransfersToNodeColoring) {
  Rng rng(2);
  const auto g = graph::gen::random_regular(64, 16, rng);
  const auto b = graph_to_bipartite(g);
  splitting::SolverOptions options;
  options.deterministic = true;
  const auto result = splitting::solve_weak_splitting(b, options, rng);
  // Right node i of b is node i of g: the weak splitting IS a node coloring
  // where every node sees both colors.
  EXPECT_TRUE(is_graph_weak_splitting(g, result.colors));
}

TEST(SinklessInstance, MajorityConstructionShape) {
  Rng rng(3);
  const auto g = graph::gen::random_regular(60, 6, rng);
  std::vector<std::uint64_t> ids(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = v;
  const auto b = build_sinkless_instance(g, ids);
  EXPECT_EQ(b.rank(), 2u);
  EXPECT_GE(b.min_left_degree(), 3u);  // >= ceil(6/2)
  EXPECT_LE(b.max_left_degree(), 6u);
}

TEST(SinklessInstance, OrientationDecoding) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  std::vector<std::uint64_t> ids{0, 1};
  // Red: toward larger id (node 1). Blue: toward smaller (node 0).
  auto toward_v = orientation_from_splitting(
      g, {splitting::Color::kRed}, ids);
  EXPECT_TRUE(toward_v[0]);
  toward_v = orientation_from_splitting(g, {splitting::Color::kBlue}, ids);
  EXPECT_FALSE(toward_v[0]);
}

class Figure1Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Figure1Sweep, EndToEndSinkless) {
  const std::size_t d = GetParam();
  Rng rng(100 + d);
  const auto g = graph::gen::random_regular(120, d, rng);
  local::CostMeter meter;
  std::string algo;
  const auto orientation = sinkless_via_weak_splitting(g, rng, &meter, &algo);
  EXPECT_TRUE(orient::is_sinkless(g, orientation, 1));
  EXPECT_FALSE(algo.empty());
}

INSTANTIATE_TEST_SUITE_P(DegreeGrid, Figure1Sweep,
                         ::testing::Values(5, 6, 8, 12, 24));

TEST(Figure1, RejectsLowDegree) {
  Rng rng(4);
  const auto g = graph::gen::random_regular(30, 4, rng);
  EXPECT_THROW(sinkless_via_weak_splitting(g, rng), ds::CheckError);
}

TEST(UniformSplitting, VerifierWindows) {
  graph::Graph g(5);
  for (graph::NodeId v = 1; v < 5; ++v) g.add_edge(0, v);
  // Node 0 has degree 4; eps=0.2 window: [floor(1.2), ceil(2.8)] = [1,3].
  EXPECT_TRUE(is_uniform_splitting(g, {false, true, true, false, false},
                                   0.2, 4));
  EXPECT_FALSE(is_uniform_splitting(g, {false, false, false, false, false},
                                    0.2, 4));
  EXPECT_FALSE(is_uniform_splitting(g, {false, true, true, true, true},
                                    0.2, 4));
}

TEST(UniformSplitting, DerandomizedInTheoremRegime) {
  Rng rng(5);
  // Potential ~ 2n*exp(-2 eps^2 d): d = 128 at eps = 0.2 gives ~0.02 < 1
  // (d = 64 sits just outside at ~1.3).
  const auto g = graph::gen::random_regular(256, 128, rng);
  local::CostMeter meter;
  const auto result = uniform_split(g, 0.2, 16, rng, &meter);
  EXPECT_TRUE(is_uniform_splitting(g, result.is_red, 0.2, 16));
  EXPECT_TRUE(result.derandomized);
  EXPECT_LT(result.initial_potential, 1.0);
}

TEST(UniformSplitting, LocalSearchFallbackOutsideRegime) {
  Rng rng(6);
  // Degree 16 with eps 0.1: windows are tight; potential typically >= 1, so
  // the fallback path must still deliver a valid split.
  const auto g = graph::gen::random_regular(64, 16, rng);
  const auto result = uniform_split(g, 0.1, 16, rng, nullptr);
  EXPECT_TRUE(is_uniform_splitting(g, result.is_red, 0.1, 16));
}

TEST(UniformSplitting, UnconstrainedGraphTrivial) {
  graph::Graph g(10);  // no edges
  Rng rng(7);
  const auto result = uniform_split(g, 0.2, 1, rng, nullptr);
  EXPECT_EQ(result.is_red.size(), 10u);
}

TEST(ColoringViaSplitting, PaletteNearDelta) {
  Rng rng(8);
  const auto g = graph::gen::random_regular(256, 64, rng);
  RecursiveColoringConfig config;
  config.eps = 0.1;
  config.target_degree = 16;
  local::CostMeter meter;
  const auto result = coloring_via_splitting(g, config, rng, &meter);
  EXPECT_TRUE(coloring::is_proper_coloring(g, result.colors));
  EXPECT_GE(result.levels, 1u);
  EXPECT_LE(result.max_part_degree, config.target_degree);
  // (1+o(1))Δ at laptop scale: within 2.5x of Δ, and always >= Δ+1-ish.
  EXPECT_LT(result.num_colors, static_cast<std::uint32_t>(2.5 * 64));
}

TEST(ColoringViaSplitting, LowDegreeGraphSkipsSplitting) {
  Rng rng(9);
  const auto g = graph::gen::random_regular(64, 8, rng);
  RecursiveColoringConfig config;
  config.target_degree = 16;
  const auto result = coloring_via_splitting(g, config, rng, nullptr);
  EXPECT_EQ(result.levels, 0u);
  EXPECT_LE(result.num_colors, 9u);
  EXPECT_TRUE(coloring::is_proper_coloring(g, result.colors));
}

class MisSweep : public ::testing::TestWithParam<double> {};

TEST_P(MisSweep, ValidOnGnp) {
  const double p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p * 1000));
  const auto g = graph::gen::gnp(200, p, rng);
  MisConfig config;
  local::CostMeter meter;
  const auto result = mis_via_splitting(g, config, rng, &meter);
  EXPECT_TRUE(coloring::is_mis(g, result.in_mis));
}

INSTANTIATE_TEST_SUITE_P(DensityGrid, MisSweep,
                         ::testing::Values(0.02, 0.05, 0.15, 0.4));

TEST(Mis, WorksOnStructuredGraphs) {
  Rng rng(10);
  MisConfig config;
  for (const auto& g :
       {graph::gen::cycle(31), graph::gen::complete(20),
        graph::gen::hypercube(6), graph::gen::random_tree(100, rng)}) {
    const auto result = mis_via_splitting(g, config, rng, nullptr);
    EXPECT_TRUE(coloring::is_mis(g, result.in_mis));
  }
}

TEST(Mis, HighDegreeUsesSplittingCalls) {
  Rng rng(11);
  const auto g = graph::gen::random_regular(256, 128, rng);
  MisConfig config;
  const auto result = mis_via_splitting(g, config, rng, nullptr);
  EXPECT_TRUE(coloring::is_mis(g, result.in_mis));
  EXPECT_GE(result.phases, 1u);
  EXPECT_GE(result.splitting_calls, 1u);
}

TEST(Mis, EmptyGraphEdgeCase) {
  graph::Graph g(5);
  Rng rng(12);
  MisConfig config;
  const auto result = mis_via_splitting(g, config, rng, nullptr);
  // With no edges every node is in the MIS.
  for (bool in : result.in_mis) EXPECT_TRUE(in);
}

}  // namespace
}  // namespace ds::reductions
