// Tests for the observability layer (src/obs/): metrics registry
// semantics, the disabled no-op path, the drain/merge codec, trace /
// metrics JSON well-formedness, and — the load-bearing property — that the
// deterministic `rounds.*` counters are bit-identical across all four
// runtimes for a fixed (graph, IdStrategy, seed).

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "graph/generators.hpp"
#include "net/loopback.hpp"
#include "net/tcp_network.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "runtime/select.hpp"
#include "support/check.hpp"

namespace ds::obs {
namespace {

// ---- Metrics registry ----------------------------------------------------

TEST(Metrics, CounterAggregatesAcrossSlots) {
  Metrics m;
  Counter a = m.counter("c", /*slots=*/3, /*slot=*/0);
  Counter b = m.counter("c", /*slots=*/3, /*slot=*/2);
  a.add(5);
  a.add(7);
  b.add(100);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "c");
  EXPECT_EQ(snap[0].kind, Kind::kCounter);
  EXPECT_EQ(snap[0].value(), 112u);
  EXPECT_EQ(snap[0].count, 3u);  // three add() calls across the slots
}

TEST(Metrics, ReRegistrationGrowsSlotsAndKeepsHandlesValid) {
  Metrics m;
  Counter a = m.counter("c", 1, 0);
  a.add(1);
  // Growing the slot count must not invalidate `a` (cells live in a deque).
  Counter b = m.counter("c", 8, 7);
  a.add(1);
  b.add(40);
  EXPECT_EQ(m.snapshot()[0].value(), 42u);
  EXPECT_EQ(m.num_metrics(), 1u);
}

TEST(Metrics, GaugeKeepsLastSetValueAndMergesByMax) {
  Metrics m;
  Gauge g = m.gauge("g");
  g.set(9);
  g.set(4);
  EXPECT_EQ(m.snapshot()[0].value(), 4u);
  // Merge semantics: deterministic gauges agree across ranks, so max is
  // the identity; a rank that never set one must not pull it to zero.
  MetricSnapshot peer;
  peer.name = "g";
  peer.kind = Kind::kGauge;
  peer.sum = 2;
  peer.count = 1;
  m.merge(peer);
  EXPECT_EQ(m.snapshot()[0].value(), 4u);
}

TEST(Metrics, HistogramTracksCountSumMinMax) {
  Metrics m;
  Histogram h = m.histogram("h");
  h.record(10);
  h.record(3);
  h.record(30);
  const auto s = m.snapshot()[0];
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 43u);
  EXPECT_EQ(s.min, 3u);
  EXPECT_EQ(s.max, 30u);
}

TEST(Metrics, KindMismatchThrows) {
  Metrics m;
  m.counter("x");
  EXPECT_THROW(m.gauge("x"), CheckError);
  EXPECT_THROW(m.histogram("x"), CheckError);
}

TEST(Metrics, DisabledHandlesAreNoOps) {
  // The whole "zero-cost when off" contract: default-constructed handles
  // swallow every operation.
  Counter c;
  Gauge g;
  Histogram h;
  c.add(1);
  g.set(2);
  h.record(3);
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(g.enabled());
  EXPECT_FALSE(h.enabled());
}

TEST(Metrics, ResetZeroesButKeepsRegistrations) {
  Metrics m;
  Counter c = m.counter("c");
  c.add(5);
  m.reset();
  EXPECT_EQ(m.num_metrics(), 1u);
  EXPECT_EQ(m.snapshot()[0].value(), 0u);
  c.add(2);  // handle still valid after reset
  EXPECT_EQ(m.snapshot()[0].value(), 2u);
}

// ---- Drain / merge codec -------------------------------------------------

TEST(Recorder, DrainZeroesAndMergeReconstructs) {
  Recorder rec;
  Counter c = rec.metrics().counter("c");
  Histogram h = rec.metrics().histogram("h");
  c.add(11);
  h.record(7);
  rec.add_span(Phase::kRound, /*round=*/0, /*ts_us=*/5, /*dur_us=*/9);

  // Look metrics up by name: the recorder registers its own instruments
  // (obs.events.dropped), so positional indexing would be fragile.
  const auto by_name = [&](const std::string& name) {
    for (const MetricSnapshot& s : rec.metrics().snapshot()) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "metric not found: " << name;
    return MetricSnapshot{};
  };

  const std::vector<std::uint64_t> block = rec.drain_words();
  // Draining zeroed the local state (that is what prevents double counting
  // when a rank merges its own gathered block back in)...
  EXPECT_EQ(by_name("c").value(), 0u);
  EXPECT_TRUE(rec.events().empty());
  // ...and merging reconstructs it exactly.
  rec.merge_words(block.data(), block.size());
  EXPECT_EQ(by_name("c").value(), 11u);
  EXPECT_EQ(by_name("h").sum, 7u);
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_EQ(rec.events()[0].phase, Phase::kRound);
  EXPECT_EQ(rec.events()[0].ts_us, 5u);
  EXPECT_EQ(rec.events()[0].dur_us, 9u);

  // Merging the same block again doubles the counter (merge is additive).
  rec.merge_words(block.data(), block.size());
  EXPECT_EQ(by_name("c").value(), 22u);
}

TEST(Recorder, MergeRejectsMalformedBlocks) {
  Recorder rec;
  rec.metrics().counter("c").add(1);
  std::vector<std::uint64_t> block = rec.drain_words();

  Recorder target;
  std::vector<std::uint64_t> bad = block;
  bad[0] ^= 1;  // wrong magic
  EXPECT_THROW(target.merge_words(bad.data(), bad.size()), CheckError);
  EXPECT_THROW(target.merge_words(block.data(), block.size() - 1),
               CheckError);
}

// ---- JSON writers --------------------------------------------------------

/// Minimal recursive-descent JSON validator. The repo deliberately has no
/// JSON dependency; "the exporters emit parseable JSON" is the property
/// CI's `python3 -m json.tool` gate relies on, so the test asserts it
/// in-process too.
class JsonValidator {
 public:
  static bool valid(const std::string& text) {
    JsonValidator v(text);
    v.ws();
    if (!v.value()) return false;
    v.ws();
    return v.pos_ == v.text_.size();
  }

 private:
  explicit JsonValidator(const std::string& text) : text_(text) {}
  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  void ws() {
    while (!eof() && (peek() == ' ' || peek() == '\n' || peek() == '\t' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool lit(const char* s) {
    for (; *s != '\0'; ++s) {
      if (eof() || peek() != *s) return false;
      ++pos_;
    }
    return true;
  }
  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return lit("true");
      case 'f':
        return lit("false");
      case 'n':
        return lit("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (eof() || peek() != ':') return false;
      ++pos_;
      ws();
      if (!value()) return false;
      ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool string() {
    if (eof() || peek() != '"') return false;
    ++pos_;
    while (!eof() && peek() != '"') {
      if (peek() == '\\') {
        ++pos_;
        if (eof()) return false;
      }
      ++pos_;
    }
    if (eof()) return false;
    ++pos_;  // closing '"'
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() &&
           (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
            peek() == '.' || peek() == 'e' || peek() == 'E' ||
            peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(JsonValidator, SanityOnHandWrittenCases) {
  EXPECT_TRUE(JsonValidator::valid(R"({"a": [1, 2.5, "x\"y"], "b": {}})"));
  EXPECT_TRUE(JsonValidator::valid("[]"));
  EXPECT_FALSE(JsonValidator::valid("{"));
  EXPECT_FALSE(JsonValidator::valid(R"({"a": 1,})"));
  EXPECT_FALSE(JsonValidator::valid(R"({"a": 1} trailing)"));
}

// ---- Instrumented runs ---------------------------------------------------

const algo::Spec& mis_spec() { return algo::find("mis"); }

algo::RunContext context_for(const graph::Graph& g, Recorder* rec,
                             const runtime::RuntimeConfig& config) {
  algo::RunContext ctx;
  ctx.graph = &g;
  ctx.seed = 9;
  ctx.params = algo::Params::parse(mis_spec().params, {});
  ctx.factory = runtime::make_executor_factory(config, {}, rec);
  ctx.sequential_runtime = runtime::is_sequential(config);
  ctx.recorder = rec;
  return ctx;
}

/// The deterministic counter totals of one instrumented run, keyed by name.
std::map<std::string, std::uint64_t> deterministic_counters(
    const std::vector<MetricSnapshot>& metrics) {
  std::map<std::string, std::uint64_t> out;
  for (const MetricSnapshot& m : metrics) {
    if (m.name == "rounds.live_nodes" || m.name == "rounds.messages" ||
        m.name == "rounds.payload_words" || m.name == "rounds.executed") {
      out[m.name] = m.value();
    }
  }
  return out;
}

TEST(Recorder, SequentialRunEmitsSpansAndValidJson) {
  Rng rng(11);
  const graph::Graph g = graph::gen::gnp(60, 0.12, rng);
  Recorder rec;
  const algo::Result result =
      algo::execute(mis_spec(), context_for(g, &rec, {}));
  EXPECT_TRUE(result.verified);
  EXPECT_FALSE(result.metrics.empty());
  EXPECT_FALSE(rec.events().empty());

  // One kRound span per executed round, timestamps monotone per phase.
  std::size_t round_spans = 0;
  std::uint64_t last_ts = 0;
  for (const TraceEvent& e : rec.events()) {
    if (e.phase == Phase::kRound) {
      ++round_spans;
      EXPECT_GE(e.ts_us, last_ts);
      last_ts = e.ts_us;
    }
  }
  EXPECT_EQ(round_spans, result.executed_rounds);

  std::ostringstream trace;
  rec.write_trace_json(trace);
  EXPECT_TRUE(JsonValidator::valid(trace.str())) << trace.str();
  EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);

  std::ostringstream metrics;
  rec.write_metrics_json(metrics, {{"algo", "mis"}, {"seed", "9"}});
  EXPECT_TRUE(JsonValidator::valid(metrics.str())) << metrics.str();
  EXPECT_NE(metrics.str().find("\"rounds.messages\""), std::string::npos);

  std::ostringstream table;
  rec.write_stats_table(table);
  EXPECT_NE(table.str().find("rounds.messages"), std::string::npos);
}

TEST(Recorder, MpRunHasOneLanePerWorkerAndMonotoneTimestamps) {
  Rng rng(11);
  const graph::Graph g = graph::gen::gnp(60, 0.12, rng);
  Recorder rec;
  runtime::RuntimeConfig config;
  config.kind = runtime::RuntimeKind::kMultiProcess;
  config.workers = 2;
  const algo::Result result =
      algo::execute(mis_spec(), context_for(g, &rec, config));
  EXPECT_TRUE(result.verified);

  // Both workers' drained blocks were merged: every lane present, and
  // within each (lane, phase) track the timestamps are monotone (that is
  // what makes the Perfetto rendering honest).
  std::map<std::uint32_t, std::size_t> spans_per_lane;
  std::map<std::pair<std::uint32_t, Phase>, std::uint64_t> last_ts;
  for (const TraceEvent& e : rec.events()) {
    ++spans_per_lane[e.lane];
    auto [it, inserted] = last_ts.try_emplace({e.lane, e.phase}, e.ts_us);
    if (!inserted) {
      EXPECT_GE(e.ts_us, it->second)
          << "lane " << e.lane << " phase " << phase_name(e.phase);
      it->second = e.ts_us;
    }
  }
  ASSERT_EQ(spans_per_lane.size(), 2u);
  EXPECT_GT(spans_per_lane[0], 0u);
  EXPECT_GT(spans_per_lane[1], 0u);

  std::ostringstream trace;
  rec.write_trace_json(trace);
  EXPECT_TRUE(JsonValidator::valid(trace.str()));
}

// ---- Cross-runtime determinism -------------------------------------------

TEST(Conformance, DeterministicCountersIdenticalAcrossRuntimes) {
  Rng rng(11);
  const std::vector<std::pair<std::string, graph::Graph>> instances = {
      {"gnp", graph::gen::gnp(60, 0.12, rng)},
      {"torus", graph::gen::torus(7, 6)},
  };
  for (const auto& [label, g] : instances) {
    Recorder seq_rec;
    const algo::Result expected =
        algo::execute(mis_spec(), context_for(g, &seq_rec, {}));
    const auto want = deterministic_counters(expected.metrics);
    ASSERT_EQ(want.size(), 4u) << label;
    EXPECT_GT(want.at("rounds.messages"), 0u) << label;

    for (const char* runtime : {"parallel", "mp"}) {
      runtime::RuntimeConfig config;
      if (std::string(runtime) == "parallel") {
        config.kind = runtime::RuntimeKind::kParallel;
        config.threads = 2;
      } else {
        config.kind = runtime::RuntimeKind::kMultiProcess;
        config.workers = 2;
      }
      Recorder rec;
      const algo::Result got =
          algo::execute(mis_spec(), context_for(g, &rec, config));
      EXPECT_EQ(deterministic_counters(got.metrics), want)
          << label << "/" << runtime;
    }

    // TCP loopback fleet: exit-code checks, not EXPECT — a gtest failure
    // on a forked child rank would die silently with the process.
    net::TcpOptions topts;
    topts.handshake_timeout_ms = 20000;
    topts.round_timeout_ms = 30000;
    const graph::Graph& graph_ref = g;
    const net::LoopbackReport report = net::run_loopback_ranks(
        2, [&](net::LoopbackRank&& lr) -> int {
          net::Socket* first_listen = &lr.listen;
          const std::size_t rank = lr.rank;
          const auto hosts = lr.hosts;
          Recorder rec;
          algo::RunContext ctx;
          ctx.graph = &graph_ref;
          ctx.seed = 9;
          ctx.params = algo::Params::parse(mis_spec().params, {});
          ctx.sequential_runtime = false;
          ctx.recorder = &rec;
          ctx.factory = [&](const graph::Graph& fg,
                            local::IdStrategy strategy, std::uint64_t seed)
              -> std::unique_ptr<local::Executor> {
            net::TcpNetworkConfig config;
            config.rank = rank;
            config.hosts = hosts;
            config.transport = topts;
            config.listen = std::move(*first_listen);
            auto exec = std::make_unique<net::TcpNetwork>(
                fg, strategy, seed, std::move(config));
            exec->set_recorder(&rec);
            return exec;
          };
          const algo::Result got = algo::execute(mis_spec(), ctx);
          if (!got.verified) return 3;
          if (got.output_words != expected.output_words) return 4;
          if (deterministic_counters(got.metrics) != want) return 5;
          // The merged trace must have one lane per rank.
          bool lane0 = false;
          bool lane1 = false;
          for (const TraceEvent& e : rec.events()) {
            if (e.lane == 0) lane0 = true;
            if (e.lane == 1) lane1 = true;
          }
          if (!lane0 || !lane1) return 6;
          return 0;
        });
    EXPECT_TRUE(report.all_ok()) << label;
  }
}

TEST(Conformance, UnobservedRunsStayUnobserved) {
  // A null recorder must leave the result's metrics empty — the disabled
  // path is the default and must not grow state behind the user's back.
  Rng rng(11);
  const graph::Graph g = graph::gen::gnp(40, 0.15, rng);
  const algo::Result result =
      algo::execute(mis_spec(), context_for(g, nullptr, {}));
  EXPECT_TRUE(result.verified);
  EXPECT_TRUE(result.metrics.empty());
}

}  // namespace
}  // namespace ds::obs
