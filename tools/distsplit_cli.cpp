/// \file distsplit_cli.cpp
/// Command-line front end of the library, for downstream users who want to
/// run the solvers on their own instances without writing C++.
///
/// Subcommands (first positional argument):
///   gen      --nu=N --nv=N --delta=D [--seed=S] [--unified] [--out=F.dsg]
///            Generate a random (δ, r)-biregular bipartite instance and
///            write it to stdout in the edge-list format of graph/io.hpp
///            (--unified: the unified general graph instead, for the
///            general-input algorithms; --out: the packed binary .dsg
///            format instead of stdout, bipartite split recorded).
///   pack     (--gen=SPEC [--seed=S] | --input=FILE) --out=FILE.dsg
///            Pack an instance into the mmap-able binary CSR format of
///            graph/format.hpp: either a deterministic generator instance
///            ("torus:w=64,h=64", see graph/insitu.hpp for the families)
///            or an edge-list file. The written file is re-opened and its
///            payload digest verified before reporting success.
///   stats    --input=FILE
///            Print instance parameters (n, m, δ, Δ, r, girth).
///   list     [--names] [--scalable] [--markdown]
///            The algorithm catalog, straight from the registry: the
///            human-readable form, a machine-readable name listing for
///            scripts/CI, or the README markdown table.
///   run      --algo=NAME (--input=FILE | --graph=FILE.dsg | --gen=SPEC)
///            [--seed=S] [--param=key=value ...]
///            [--metrics=FILE] [--trace=FILE] [--stats]
///            [--profile=FILE] [--http-port=P] [--event-cap=N]
///            + the runtime flags below
///            Run any registered algorithm on any runtime. Dispatch, usage
///            text and parameter help all come from the registry — there
///            is no per-algorithm code in this tool. The observability
///            flags instrument the run: --metrics writes the aggregated
///            counter/histogram snapshot as JSON, --trace writes a Chrome
///            trace (open in Perfetto), --stats prints a summary table,
///            --profile writes the run's sampled flame-graph profile as
///            collapsed/folded stacks (flamegraph.pl / speedscope input).
///            On the distributed runtimes the recorder merges every
///            rank's drained block, so the files hold fleet-wide data.
///            --http-port=P serves live introspection while the run is in
///            flight (/metrics /status /healthz /api/v1/snapshot; P=0
///            binds an ephemeral port, printed at startup) and implies
///            observing; --event-cap=N bounds the trace flight recorder.
///            Input sources: --input reads a text edge list, --graph maps
///            a packed .dsg file read-only in O(1), --gen materializes a
///            generator instance in memory.
///   submit   --port=P [--host=H] --algo=NAME [--seed=S]
///            [--param=key=value ...] [--id=N] [--timeout-ms=MS]
///            Submit one run to a resident distsplit_serve daemon's request
///            port and print its answer. The daemon executes over its
///            standing fleet; for any scalable spec the reported
///            output-digest is bit-identical to the one-shot `run` on the
///            same (instance, seed, params). Exit 0 on a served run, 3 on a
///            rejection (queue full, draining, unhealthy fleet — retry
///            later), 2 on an error.
///
/// Exit code 0 on success, 1 on bad usage (unknown subcommand, algorithm,
/// flag or parameter — with a did-you-mean suggestion where possible) or a
/// rejected/corrupt .dsg file (versioned-magic validation names the byte
/// that failed), 2 on an execution failure (I/O, solver rejection, aborted
/// fleet), 3 on a rejected `submit`.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "dist/distributed_network.hpp"
#include "graph/format.hpp"
#include "graph/generators.hpp"
#include "graph/insitu.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "net/socket.hpp"
#include "obs/http_server.hpp"
#include "obs/profile.hpp"
#include "obs/publish.hpp"
#include "obs/recorder.hpp"
#include "runtime/select.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "support/provenance.hpp"

namespace {

using namespace ds;

int usage() {
  std::cerr
      << "usage: distsplit_cli <gen|pack|stats|list|run|submit> "
         "[--key=value...]\n"
         "  gen    --nu=N --nv=N --delta=D [--seed=S] [--unified] "
         "[--out=F.dsg]\n"
         "  pack   (--gen=SPEC [--seed=S] | --input=FILE) --out=FILE.dsg\n"
         "  stats  --input=FILE\n"
         "  list   [--names] [--scalable] [--markdown]\n"
         "  run    --algo=NAME (--input=FILE | --graph=FILE.dsg | "
         "--gen=SPEC)\n"
         "         [--seed=S] [--param=key=value ...]\n"
         "         [--metrics=FILE] [--trace=FILE] [--stats]\n"
         "         [--profile=FILE] [--http-port=P] [--event-cap=N]\n"
         "         "
      << runtime::kRuntimeFlagsHelp
      << "\n  submit --port=P [--host=H] --algo=NAME [--seed=S] "
         "[--param=key=value ...]\n"
         "         [--id=N] [--timeout-ms=MS]"
      << "\n\nregistered algorithms (see also: distsplit_cli list):\n"
      << algo::usage_catalog();
  return 1;
}

graph::BipartiteGraph load_bipartite(const Options& opts) {
  const std::string path = opts.get("input", "");
  DS_CHECK_MSG(!path.empty(), "--input=FILE is required");
  std::ifstream in(path);
  DS_CHECK_MSG(in.good(), "cannot open input file: " + path);
  return graph::io::read_bipartite(in);
}

graph::Graph load_graph(const Options& opts) {
  const std::string path = opts.get("input", "");
  DS_CHECK_MSG(!path.empty(), "--input=FILE is required");
  std::ifstream in(path);
  DS_CHECK_MSG(in.good(), "cannot open input file: " + path);
  return graph::io::read_edge_list(in);
}

int cmd_gen(const Options& opts) {
  const auto nu = static_cast<std::size_t>(opts.get_int("nu", 256));
  const auto nv = static_cast<std::size_t>(opts.get_int("nv", 256));
  const auto delta = static_cast<std::size_t>(opts.get_int("delta", 16));
  Rng rng(opts.seed());
  // Right degrees (the rank) follow from nu*delta/nv; pick nv accordingly.
  const auto b = graph::gen::random_biregular(nu, nv, delta, rng);
  const std::string out = opts.get("out", "");
  if (!out.empty()) {
    // Packed binary form of the unified instance; the left-side size in the
    // header lets bipartite-input consumers recover the split.
    graph::write_dsg(b.unified(), out, b.num_left(), opts.seed());
    std::cout << "packed: " << out << " (n="
              << (b.num_left() + b.num_right()) << ", m=" << b.num_edges()
              << ", nu=" << b.num_left() << ")\n";
    return 0;
  }
  if (opts.has("unified")) {
    // General-graph edge list of the unified instance, consumable by the
    // general-input algorithms (`run --algo=mis` etc.).
    graph::io::write_edge_list(std::cout, b.unified());
  } else {
    graph::io::write_bipartite(std::cout, b);
  }
  return 0;
}

int cmd_pack(const Options& opts) {
  const std::string out = opts.get("out", "");
  DS_CHECK_MSG(!out.empty(), "--out=FILE.dsg is required");
  const std::string gen = opts.get("gen", "");
  if (!gen.empty()) {
    const graph::DistributedGenerator dg(graph::GenSpec::parse(gen),
                                         opts.seed());
    graph::write_dsg(dg.generate_full(), out, dg.num_left(), dg.seed());
  } else {
    graph::write_dsg(load_graph(opts), out, /*nu=*/0, opts.seed());
  }
  // Read-back verification: mmap the file we just wrote and check the
  // payload digest, so a pack that silently truncated cannot enter a CI
  // fixture cache looking healthy.
  graph::DsgHeader header;
  (void)graph::load_dsg(out, &header, /*verify_digest=*/true);
  std::cout << "packed: " << out << " (n=" << header.n << ", m=" << header.m
            << ", nu=" << header.nu << ", digest=0x" << std::hex
            << header.payload_digest << std::dec << ")\n";
  return 0;
}

int cmd_stats(const Options& opts) {
  const auto b = load_bipartite(opts);
  const graph::Graph unified = b.unified();
  std::cout << "left nodes (U):   " << b.num_left() << "\n"
            << "right nodes (V):  " << b.num_right() << "\n"
            << "edges:            " << b.num_edges() << "\n"
            << "min left degree:  " << b.min_left_degree() << "\n"
            << "max left degree:  " << b.max_left_degree() << "\n"
            << "rank r:           " << b.rank() << "\n"
            << "girth:            ";
  const std::size_t girth = graph::girth(unified);
  if (girth == SIZE_MAX) {
    std::cout << "inf (forest)\n";
  } else {
    std::cout << girth << "\n";
  }
  return 0;
}

int cmd_list(const Options& opts) {
  if (opts.has("markdown")) {
    std::cout << algo::catalog_markdown();
  } else if (opts.has("names")) {
    std::cout << algo::names_listing(opts.has("scalable"));
  } else {
    std::cout << algo::usage_catalog(opts.has("scalable"));
  }
  return 0;
}

/// The `submit` flags (everything else must be an algorithm parameter
/// passed as --param=key=value — the daemon validates them server-side).
const std::vector<std::string> kSubmitFlags = {
    "host", "port", "algo", "seed", "param", "id", "timeout-ms",
};

int cmd_submit(const Options& opts) {
  for (const std::string& key : opts.keys()) {
    if (std::find(kSubmitFlags.begin(), kSubmitFlags.end(), key) !=
        kSubmitFlags.end()) {
      continue;
    }
    std::string msg = "unknown flag '--" + key + "'";
    const std::string hint = algo::suggest(key, kSubmitFlags);
    if (!hint.empty()) msg += "; did you mean '--" + hint + "'?";
    msg += " (algorithm parameters go through --param=key=value)";
    DS_CHECK_MSG(false, msg);
  }
  serve::ClientConfig config;
  config.host = opts.get("host", "127.0.0.1");
  const long long port = opts.get_int("port", 0);
  DS_CHECK_MSG(port > 0 && port <= 65535,
               "--port=P (the daemon's request port) is required");
  config.port = static_cast<std::uint16_t>(port);
  config.timeout_ms = static_cast<int>(opts.get_int("timeout-ms", 120000));

  serve::Request request;
  request.algo = opts.get("algo", "");
  DS_CHECK_MSG(!request.algo.empty(),
               "--algo=NAME is required (see: distsplit_cli list)");
  request.seed = opts.seed();
  request.id = static_cast<std::uint64_t>(opts.get_int("id", 1));
  request.params = algo::parse_param_overrides(opts.get_all("param"));

  const serve::Response response = serve::submit(config, request);
  switch (response.status) {
    case serve::Status::kOk:
      // The same digest line the one-shot `run` prints, so serving can be
      // diffed against it byte-for-byte.
      std::cout << request.algo << ": " << response.brief << "\n"
                << "rounds: " << response.rounds << "\n"
                << "wall-us: " << response.wall_us << "\n"
                << "output-digest: " << std::hex << response.output_digest
                << std::dec << "\n";
      return 0;
    case serve::Status::kRejected:
      std::cerr << "submit rejected: " << response.brief << "\n";
      return 3;
    case serve::Status::kError:
      break;
  }
  std::cerr << "submit failed: " << response.brief << "\n";
  return 2;
}

/// The `run` flags that belong to the driver itself (everything else must
/// be a registered algorithm parameter passed as --param=key=value).
const std::vector<std::string> kRunFlags = {
    "algo",       "input",   "graph",      "gen",          "seed",
    "param",      "runtime", "threads",    "workers",      "halo-words",
    "gather-words", "rank",  "ranks",      "hosts",        "sndbuf",
    "rcvbuf",     "metrics", "trace",      "stats",        "http-port",
    "event-cap",  "profile",
};

/// Resolution phase of `run`: anything wrong here is a usage error (exit
/// 1). Throws ds::CheckError with a did-you-mean suggestion on unknown
/// flags, algorithm names and parameter keys.
struct RunPlan {
  const algo::Spec* spec = nullptr;
  algo::Params params;
  runtime::RuntimeConfig runtime;
};

RunPlan resolve_run(const Options& opts) {
  for (const std::string& key : opts.keys()) {
    if (std::find(kRunFlags.begin(), kRunFlags.end(), key) !=
        kRunFlags.end()) {
      continue;
    }
    std::string msg = "unknown flag '--" + key + "'";
    const std::string hint = algo::suggest(key, kRunFlags);
    if (!hint.empty()) msg += "; did you mean '--" + hint + "'?";
    msg += " (algorithm parameters go through --param=key=value)";
    DS_CHECK_MSG(false, msg);
  }
  RunPlan plan;
  const std::string name = opts.get("algo", "");
  DS_CHECK_MSG(!name.empty(), "--algo=NAME is required (see: list)");
  plan.spec = &algo::find(name);
  plan.params = algo::Params::parse(
      plan.spec->params, algo::parse_param_overrides(opts.get_all("param")));
  plan.runtime = runtime::runtime_from_options(opts);
  return plan;
}

/// Edge-cut stats of the partition the distributed executors actually ran
/// — a pure function of the CSR degree profile and the part count.
void print_partition_stats(const graph::Graph& g, std::size_t parts) {
  std::vector<std::size_t> offsets(g.num_nodes() + 1, 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    offsets[v + 1] = offsets[v] + g.degree(v);
  }
  const auto bounds = dist::degree_balanced_boundaries(offsets, parts);
  const dist::PartitionStats stats = dist::partition_stats(g, offsets, bounds);
  std::cout << "partition: " << stats.cut_edges << " cut edges, "
            << stats.internal_edges << " internal, balance "
            << stats.balance_factor << "\n";
}

/// Writes `body(out)` to `path`, failing loudly on I/O errors.
template <typename Body>
void write_file(const std::string& path, const char* what, Body body) {
  std::ofstream out(path);
  DS_CHECK_MSG(out.good(), std::string("cannot open ") + what +
                               " output file: " + path);
  body(out);
  out.flush();
  DS_CHECK_MSG(out.good(), std::string("failed writing ") + what +
                               " output file: " + path);
}

int cmd_run(const RunPlan& plan, const Options& opts) {
  const algo::Spec& spec = *plan.spec;
  // Observability: one recorder for the whole run when any of
  // --metrics/--trace/--stats/--http-port asks for it; the factory installs
  // it on the executor and `execute` snapshots it into the result. The live
  // endpoints need the instruments, so --http-port implies observing.
  const bool observe = opts.has("metrics") || opts.has("trace") ||
                       opts.has("stats") || opts.has("http-port") ||
                       opts.has("profile");
  obs::Recorder recorder;
  obs::Recorder* const rec = observe ? &recorder : nullptr;
  if (rec != nullptr && opts.has("event-cap")) {
    rec->set_event_capacity(
        static_cast<std::size_t>(opts.get_int("event-cap", 0)));
  }
  // Sampling profiler: attached to the recorder so the fleet gather merges
  // every lane's folded stacks. A refused timer/handler degrades to a
  // logged notice and an empty profile, never a failed run.
  std::unique_ptr<obs::SampledProfiler> profiler;
  if (opts.has("profile")) {
    profiler = std::make_unique<obs::SampledProfiler>();
    rec->set_profiler(profiler.get());
    if (!profiler->start()) {
      std::cout << "profile: sampling unavailable (" << profiler->error()
                << ")\n";
    }
  }
  // Live introspection: the round loop publishes seqlock snapshots at round
  // boundaries; the HTTP thread only ever reads the publisher. Declared
  // before the server so the server (a reader) is torn down first.
  obs::SnapshotPublisher publisher;
  std::unique_ptr<obs::HttpServer> http;
  if (opts.has("http-port")) {
    rec->set_publisher(&publisher);
    std::vector<std::pair<std::string, std::string>> info = {
        {"tool", "distsplit_cli"},
        {"algo", spec.name},
        {"runtime", runtime::runtime_description(plan.runtime)},
        {"seed", std::to_string(opts.seed())},
    };
    for (const auto& kv : Provenance::get().context()) info.push_back(kv);
    publisher.set_info(std::move(info));
    if (profiler != nullptr) {
      // Live profile endpoint: reads the ring without draining it, so the
      // final written file still carries the full run.
      obs::SampledProfiler* const prof = profiler.get();
      const std::string prefix =
          rec->lane_kind() + ":" + std::to_string(rec->lane());
      publisher.set_profile_source([prof, prefix] {
        std::ostringstream folded;
        obs::SampledProfiler::write_folded(folded,
                                           prof->collect_folded(prefix));
        return folded.str();
      });
    }
    http = std::make_unique<obs::HttpServer>(
        publisher,
        static_cast<std::uint16_t>(opts.get_int("http-port", 0)));
    std::cout << "http: listening on port " << http->port()
              << " (/metrics /status /healthz /api/v1/snapshot"
              << (profiler != nullptr ? " /api/v1/profile" : "") << ")"
              << std::endl;
  }
  algo::RunContext ctx;
  ctx.seed = opts.seed();
  ctx.params = plan.params;
  ctx.factory = runtime::make_executor_factory(plan.runtime, {}, rec);
  ctx.sequential_runtime = runtime::is_sequential(plan.runtime);
  ctx.recorder = rec;

  // Input source: a text edge list (--input), a packed .dsg mapped
  // read-only in O(1) (--graph), or an in-memory generator instance
  // (--gen). Bipartite-input specs recover the split from the .dsg header
  // / generator left-side size.
  const std::string dsg_path = opts.get("graph", "");
  const std::string gen_text = opts.get("gen", "");
  const int sources = static_cast<int>(!opts.get("input", "").empty()) +
                      static_cast<int>(!dsg_path.empty()) +
                      static_cast<int>(!gen_text.empty());
  DS_CHECK_MSG(sources == 1,
               "exactly one of --input=FILE, --graph=FILE.dsg or --gen=SPEC "
               "is required");
  graph::Graph g;
  graph::BipartiteGraph b;
  std::size_t nu = 0;
  if (!dsg_path.empty()) {
    graph::DsgHeader header;
    g = graph::load_dsg(dsg_path, &header);
    nu = static_cast<std::size_t>(header.nu);
  } else if (!gen_text.empty()) {
    const graph::DistributedGenerator dg(graph::GenSpec::parse(gen_text),
                                         opts.seed());
    g = dg.generate_full();
    nu = dg.num_left();
  }
  if (spec.input == algo::InputKind::kGeneralGraph) {
    if (dsg_path.empty() && gen_text.empty()) g = load_graph(opts);
    ctx.graph = &g;
  } else {
    if (dsg_path.empty() && gen_text.empty()) {
      b = load_bipartite(opts);
    } else {
      DS_CHECK_MSG(nu > 0, "--algo=" + spec.name +
                               " needs a bipartite instance, but this "
                               "source carries no left/right split");
      b = graph::bipartite_from_unified(g, nu);
      g = graph::Graph();  // the unified copy is no longer needed
    }
    ctx.bipartite = &b;
  }

  std::cout << "algorithm: " << spec.name << "\n";
  if (plan.runtime.kind == runtime::RuntimeKind::kTcp) {
    const std::size_t parts = net::read_hosts_file(plan.runtime.hosts).size();
    std::cout << "executor: tcp(rank " << plan.runtime.rank << " of " << parts
              << ")\n";
    if (ctx.graph != nullptr) print_partition_stats(*ctx.graph, parts);
  } else {
    std::cout << "executor: " << runtime::runtime_description(plan.runtime)
              << "\n";
    if (plan.runtime.kind == runtime::RuntimeKind::kMultiProcess &&
        ctx.graph != nullptr) {
      print_partition_stats(*ctx.graph,
                            dist::DistributedNetwork::resolve_workers(
                                plan.runtime.workers, g.num_nodes()));
    }
  }

  if (http != nullptr) publisher.run_started(spec.name);
  algo::Result result;
  try {
    result = algo::execute(spec, ctx);
  } catch (...) {
    // /healthz must flip to 503: a failed run marks the publisher aborted
    // (the TCP transport already did on a collective abort — idempotent).
    if (http != nullptr) publisher.run_finished(/*ok=*/false);
    throw;
  }
  if (http != nullptr) publisher.run_finished(/*ok=*/true);
  for (const auto& [key, value] : result.summary) {
    std::cout << key << ": " << value << "\n";
  }
  std::cout << "verified: " << (result.verified ? "yes" : "no") << "\n";
  std::cout << "output-digest: " << std::hex << result.output_digest()
            << std::dec << "\n";

  if (rec != nullptr) {
    if (profiler != nullptr) profiler->stop();
    const std::string metrics_path = opts.get("metrics", "");
    if (!metrics_path.empty()) {
      std::vector<std::pair<std::string, std::string>> context = {
          {"algo", spec.name},
          {"runtime", runtime::runtime_description(plan.runtime)},
          {"seed", std::to_string(ctx.seed)},
      };
      for (const auto& kv : Provenance::get().context()) {
        context.push_back(kv);
      }
      write_file(metrics_path, "metrics", [&](std::ostream& out) {
        rec->write_metrics_json(out, context);
      });
      std::cout << "metrics: " << metrics_path << "\n";
    }
    const std::string trace_path = opts.get("trace", "");
    if (!trace_path.empty()) {
      write_file(trace_path, "trace", [&](std::ostream& out) {
        rec->write_trace_json(out);
      });
      std::cout << "trace: " << trace_path << "\n";
    }
    const std::string profile_path = opts.get("profile", "");
    if (!profile_path.empty()) {
      // Samples taken after the last drain (output gather, run teardown)
      // are still in the ring; absorb them before writing.
      rec->absorb_profiler();
      write_file(profile_path, "profile", [&](std::ostream& out) {
        rec->write_folded(out);
      });
      std::cout << "profile: " << profile_path << " ("
                << rec->folded().size() << " stacks)\n";
    }
    if (opts.has("stats")) rec->write_stats_table(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Options opts(argc - 1, argv + 1);
    if (cmd == "gen") return cmd_gen(opts);
    if (cmd == "pack") return cmd_pack(opts);
    if (cmd == "stats") return cmd_stats(opts);
    if (cmd == "list") return cmd_list(opts);
    if (cmd == "submit") return cmd_submit(opts);
    if (cmd == "run") {
      // Resolution errors (unknown algo/flag/param, bad values) are usage
      // errors: exit 1, with the did-you-mean text on stderr. Execution
      // errors keep the historical exit code 2.
      RunPlan plan;
      try {
        plan = resolve_run(opts);
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
      }
      return cmd_run(plan, opts);
    }
    std::cerr << "error: unknown subcommand '" << cmd << "'\n";
    return usage();
  } catch (const graph::FormatError& e) {
    // A rejected .dsg file (bad magic/version/endianness/size/digest) is a
    // usage-class failure: the file named on the command line is not a
    // valid instance. CI's corruption test keys on this exit code.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
