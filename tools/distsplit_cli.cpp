/// \file distsplit_cli.cpp
/// Command-line front end of the library, for downstream users who want to
/// run the solvers on their own instances without writing C++.
///
/// Subcommands (first positional argument):
///   gen      --nu=N --nv=N --delta=D --rank=R [--seed=S] [--unified]
///            Generate a random (δ, r)-biregular bipartite instance and
///            write it to stdout in the edge-list format of graph/io.hpp
///            (--unified: the unified general graph instead, for `mis`).
///   stats    --input=FILE
///            Print instance parameters (n, m, δ, Δ, r, girth).
///   solve    --input=FILE [--rand] [--seed=S] [--dot=OUT.dot]
///            Solve weak splitting; print the selected algorithm, validity,
///            and the executed/charged round costs.
///   mis      --input=FILE [--seed=S] [--runtime=sequential|parallel|mp|tcp]
///            [--threads=N] [--workers=N]
///            [--rank=R --ranks=N --hosts=FILE]
///            Treat FILE as a general-graph edge list; run Luby (on the
///            selected LOCAL executor — `mp` forks a multi-process worker
///            fleet and prints its edge-cut stats; `tcp` joins a multi-host
///            rank fleet: launch the same command once per hosts-file line
///            with the matching --rank) and the deterministic decomposition
///            sweep; print both sizes.
///   color    --input=FILE
///            Deterministic (Δ+1)-coloring via ball-carving decomposition.
///
/// Exit code 0 on success, 1 on bad usage or I/O failure, 2 if a solver
/// rejected the instance.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "coloring/reduce.hpp"
#include "coloring/verify.hpp"
#include "dist/distributed_network.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "mis/mis.hpp"
#include "net/socket.hpp"
#include "netdecomp/decomposition.hpp"
#include "netdecomp/derandomize.hpp"
#include "runtime/select.hpp"
#include "splitting/solver.hpp"
#include "splitting/weak_splitting.hpp"
#include "support/check.hpp"
#include "support/options.hpp"

namespace {

using namespace ds;

int usage() {
  std::cerr
      << "usage: distsplit_cli <gen|stats|solve|mis|color> [--key=value...]\n"
         "  gen    --nu=N --nv=N --delta=D [--seed=S] [--unified]\n"
         "  stats  --input=FILE\n"
         "  solve  --input=FILE [--rand] [--seed=S] [--dot=OUT.dot]\n"
         "  mis    --input=FILE [--seed=S] "
         "[--runtime=sequential|parallel|mp|tcp]\n"
         "         [--threads=N] [--workers=N]\n"
         "         [--rank=R --ranks=N --hosts=FILE]\n"
         "  color  --input=FILE\n";
  return 1;
}

graph::BipartiteGraph load_bipartite(const Options& opts) {
  const std::string path = opts.get("input", "");
  DS_CHECK_MSG(!path.empty(), "--input=FILE is required");
  std::ifstream in(path);
  DS_CHECK_MSG(in.good(), "cannot open input file: " + path);
  return graph::io::read_bipartite(in);
}

graph::Graph load_graph(const Options& opts) {
  const std::string path = opts.get("input", "");
  DS_CHECK_MSG(!path.empty(), "--input=FILE is required");
  std::ifstream in(path);
  DS_CHECK_MSG(in.good(), "cannot open input file: " + path);
  return graph::io::read_edge_list(in);
}

int cmd_gen(const Options& opts) {
  const auto nu = static_cast<std::size_t>(opts.get_int("nu", 256));
  const auto nv = static_cast<std::size_t>(opts.get_int("nv", 256));
  const auto delta = static_cast<std::size_t>(opts.get_int("delta", 16));
  Rng rng(opts.seed());
  // Right degrees (the rank) follow from nu*delta/nv; pick nv accordingly.
  const auto b = graph::gen::random_biregular(nu, nv, delta, rng);
  if (opts.has("unified")) {
    // General-graph edge list of the unified instance, consumable by the
    // `mis` and `color` subcommands.
    graph::io::write_edge_list(std::cout, b.unified());
  } else {
    graph::io::write_bipartite(std::cout, b);
  }
  return 0;
}

int cmd_stats(const Options& opts) {
  const auto b = load_bipartite(opts);
  const graph::Graph unified = b.unified();
  std::cout << "left nodes (U):   " << b.num_left() << "\n"
            << "right nodes (V):  " << b.num_right() << "\n"
            << "edges:            " << b.num_edges() << "\n"
            << "min left degree:  " << b.min_left_degree() << "\n"
            << "max left degree:  " << b.max_left_degree() << "\n"
            << "rank r:           " << b.rank() << "\n"
            << "girth:            ";
  const std::size_t girth = graph::girth(unified);
  if (girth == SIZE_MAX) {
    std::cout << "inf (forest)\n";
  } else {
    std::cout << girth << "\n";
  }
  return 0;
}

int cmd_solve(const Options& opts) {
  const auto b = load_bipartite(opts);
  splitting::SolverOptions sopts;
  sopts.deterministic = !opts.has("rand");
  Rng rng(opts.seed());
  const auto result = splitting::solve_weak_splitting(b, sopts, rng);
  std::cout << "algorithm:      " << splitting::algorithm_name(result.algorithm)
            << "\n"
            << "valid:          "
            << (splitting::is_weak_splitting(b, result.colors) ? "yes" : "no")
            << "\n"
            << "executed rounds: " << result.meter.executed_rounds() << "\n"
            << "charged rounds:  " << result.meter.charged_rounds() << "\n";
  for (const auto& [label, rounds] : result.meter.breakdown()) {
    std::cout << "  " << label << ": " << rounds << "\n";
  }
  const std::string dot_path = opts.get("dot", "");
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    DS_CHECK_MSG(out.good(), "cannot open dot output: " + dot_path);
    std::vector<std::string> colors(b.num_right());
    for (std::size_t v = 0; v < b.num_right(); ++v) {
      colors[v] =
          result.colors[v] == splitting::Color::kRed ? "red" : "blue";
    }
    out << graph::io::to_dot(b, colors);
    std::cout << "wrote " << dot_path << "\n";
  }
  return 0;
}

int cmd_mis(const Options& opts) {
  const auto g = load_graph(opts);
  // --runtime=parallel [--threads=N] executes Luby on the sharded runtime,
  // --runtime=mp [--workers=N] on the forked multi-process one; the MIS and
  // round count are bit-identical to the sequential executor either way.
  const auto runtime = runtime::runtime_from_options(opts);
  local::CostMeter luby_meter;
  const auto rand_outcome =
      mis::luby(g, opts.seed(), &luby_meter, 10000,
                local::IdStrategy::kSequential,
                runtime::make_executor_factory(runtime));
  if (runtime.kind == runtime::RuntimeKind::kMultiProcess ||
      runtime.kind == runtime::RuntimeKind::kTcp) {
    // Report the partition the executor actually ran: for mp the resolved
    // worker count clamped to the node count, for tcp the launched rank
    // fleet. The split is a pure function of the CSR degree profile, so the
    // stats line needs only the boundaries — not the executor's full
    // topology, delivery tables or halo links.
    std::size_t parts;
    if (runtime.kind == runtime::RuntimeKind::kTcp) {
      parts = net::read_hosts_file(runtime.hosts).size();
      std::cout << "executor:      tcp(rank " << runtime.rank << " of "
                << parts << ")\n";
    } else {
      parts = dist::DistributedNetwork::resolve_workers(runtime.workers,
                                                        g.num_nodes());
      std::cout << "executor:      mp(" << parts << " workers)\n";
    }
    std::vector<std::size_t> offsets(g.num_nodes() + 1, 0);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      offsets[v + 1] = offsets[v] + g.degree(v);
    }
    const auto bounds = dist::degree_balanced_boundaries(offsets, parts);
    const dist::PartitionStats stats =
        dist::partition_stats(g, offsets, bounds);
    std::cout << "partition:     " << stats.cut_edges << " cut edges, "
              << stats.internal_edges << " internal, balance "
              << stats.balance_factor << "\n";
  } else {
    std::cout << "executor:      " << runtime::runtime_description(runtime)
              << "\n";
  }
  const auto decomp = netdecomp::ball_carving(g);
  local::CostMeter det_meter;
  const auto det_mis = netdecomp::mis_via_decomposition(g, decomp, &det_meter);
  auto count = [](const std::vector<bool>& s) {
    std::size_t c = 0;
    for (bool b : s) c += b ? 1 : 0;
    return c;
  };
  std::cout << "luby:          size " << count(rand_outcome.in_mis) << ", "
            << rand_outcome.executed_rounds << " executed rounds\n"
            << "decomposition: size " << count(det_mis) << ", "
            << det_meter.charged_rounds() << " charged rounds ("
            << decomp.num_blocks << " blocks, weak diameter "
            << decomp.max_weak_diameter << ")\n";
  return 0;
}

int cmd_color(const Options& opts) {
  const auto g = load_graph(opts);
  const auto decomp = netdecomp::ball_carving(g);
  std::uint32_t palette = 0;
  local::CostMeter meter;
  const auto colors =
      netdecomp::coloring_via_decomposition(g, decomp, &palette, &meter);
  std::size_t max_degree = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  std::cout << "colors used:    " << palette << " (max degree " << max_degree
            << ")\n"
            << "proper:         "
            << (coloring::is_proper_coloring(g, colors) ? "yes" : "no") << "\n"
            << "charged rounds: " << meter.charged_rounds() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Options opts(argc - 1, argv + 1);
    if (cmd == "gen") return cmd_gen(opts);
    if (cmd == "stats") return cmd_stats(opts);
    if (cmd == "solve") return cmd_solve(opts);
    if (cmd == "mis") return cmd_mis(opts);
    if (cmd == "color") return cmd_color(opts);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
