#!/usr/bin/env python3
"""Benchmark regression gate: diff two distsplit-bench-v1 JSON records.

Usage:
    bench_compare.py BASELINE.json CURRENT.json
        [--tolerance=0.35] [--hard-ratio=2.0] [--min-ns=1000]
        [--metric=cpu_ns_per_op] [--warn-only]

Both files come from `bench_micro --json=FILE` (schema distsplit-bench-v1).
Every benchmark present in both is compared on --metric (default
cpu_ns_per_op, the shared-runner-stable choice):

    verdict ok      within +/- tolerance of the baseline
    verdict faster  more than `tolerance` below the baseline
    verdict WARN    above (1 + tolerance) x baseline
    verdict FAIL    above hard-ratio x baseline AND baseline >= min-ns

Benchmarks only in one file are reported (baseline drift) but never fail
the gate. The exit code is 1 only when at least one FAIL fired and
--warn-only was not given -- shared CI runners are noisy, so the default
hard gate is a generous 2x on benchmarks big enough (>= --min-ns) for the
ratio to mean anything.

Stdlib only: this script must run on a bare CI runner (no pip installs).
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit("error: cannot read %s: %s" % (path, e))
    if doc.get("schema") != "distsplit-bench-v1":
        sys.exit(
            "error: %s: expected schema distsplit-bench-v1, got %r"
            % (path, doc.get("schema"))
        )
    if not isinstance(doc.get("benchmarks"), list):
        sys.exit("error: %s: missing 'benchmarks' list" % path)
    return doc


def by_name(doc, path, metric):
    out = {}
    for bench in doc["benchmarks"]:
        name = bench.get("name")
        value = bench.get(metric)
        if not isinstance(name, str) or not isinstance(value, (int, float)):
            sys.exit(
                "error: %s: malformed benchmark entry %r (need 'name' and "
                "numeric %r)" % (path, bench, metric)
            )
        out[name] = float(value)
    return out


def provenance_line(doc):
    prov = doc.get("provenance", {})
    if not isinstance(prov, dict) or not prov:
        return "(no provenance)"
    keys = ("hostname", "git_sha", "compiler", "build_type")
    parts = ["%s=%s" % (k, prov[k]) for k in keys if k in prov]
    return " ".join(parts) if parts else "(no provenance)"


def main():
    parser = argparse.ArgumentParser(
        description="diff two distsplit-bench-v1 records"
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.35)
    parser.add_argument("--hard-ratio", type=float, default=2.0)
    parser.add_argument("--min-ns", type=float, default=1000.0)
    parser.add_argument("--metric", default="cpu_ns_per_op")
    parser.add_argument("--warn-only", action="store_true")
    args = parser.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    base = by_name(base_doc, args.baseline, args.metric)
    cur = by_name(cur_doc, args.current, args.metric)

    print("baseline: %s" % provenance_line(base_doc))
    print("current:  %s" % provenance_line(cur_doc))
    print("metric:   %s  (tolerance %.0f%%, hard gate %.1fx over %gns)"
          % (args.metric, args.tolerance * 100, args.hard_ratio, args.min_ns))
    print()

    width = max([len(n) for n in set(base) | set(cur)] + [10])
    failures = 0
    warnings = 0
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            print("%-*s  %12.1f  %12s  removed (not in current)"
                  % (width, name, base[name], "-"))
            warnings += 1
            continue
        if name not in base:
            print("%-*s  %12s  %12.1f  new (not in baseline)"
                  % (width, name, "-", cur[name]))
            warnings += 1
            continue
        b, c = base[name], cur[name]
        ratio = c / b if b > 0 else float("inf")
        if ratio > args.hard_ratio and b >= args.min_ns:
            verdict = "FAIL  %.2fx over baseline" % ratio
            failures += 1
        elif ratio > 1.0 + args.tolerance:
            verdict = "WARN  %.2fx over baseline" % ratio
            warnings += 1
        elif ratio < 1.0 - args.tolerance:
            verdict = "faster  %.2fx" % ratio
        else:
            verdict = "ok"
        print("%-*s  %12.1f  %12.1f  %s" % (width, name, b, c, verdict))

    print()
    print("compared %d benchmarks: %d FAIL, %d warnings"
          % (len(set(base) & set(cur)), failures, warnings))
    if failures and args.warn_only:
        print("--warn-only: reporting failures without failing the gate")
        return 0
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
