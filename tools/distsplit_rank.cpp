/// \file distsplit_rank.cpp
/// Multi-host rank launcher: runs one rank of a TCP-distributed LOCAL
/// algorithm (or, with --local=N, a whole loopback fleet on this machine —
/// the quickest way to smoke-test the wire path without a cluster). The
/// algorithm is any distributed-capable entry of the algorithm registry
/// (`distsplit_cli list`); there is no per-algorithm code in this tool.
///
/// Multi-host usage — run once per hosts-file line, anywhere the hosts
/// resolve, in any order (the rendezvous retries until the fleet is up):
///
///     distsplit_rank --hosts=hosts.txt --rank=R
///         (--input=graph.txt | --graph=FILE.dsg | --gen=SPEC)
///         [--materialize] [--algo=NAME] [--seed=S] [--param=key=value ...]
///         [--sndbuf=BYTES] [--rcvbuf=BYTES]
///         [--metrics=FILE] [--trace=FILE] [--stats]
///         [--profile=FILE] [--http-port=P] [--event-cap=N]
///
/// Input sources: --input reads a text edge list, --graph maps a packed
/// .dsg file read-only in O(1) (fork-shared by loopback ranks), and --gen
/// names a deterministic generator instance ("torus:w=2240,h=2240", see
/// graph/insitu.hpp). --gen runs the billion-edge *in-situ scale path* by
/// default: every rank generates only its own node range and no process
/// ever materializes the whole topology (net/insitu_runner.hpp). With
/// --materialize the same instance is fully generated in memory and run
/// through the classic path instead — the RSS-comparison control, and the
/// fallback for algorithms without in-situ hooks.
///
/// Observability: --metrics/--trace/--stats instrument the run (see
/// src/obs/). Every rank merges the whole fleet's drained blocks through
/// the gather re-broadcast, but only rank 0 writes the files / prints the
/// table — in loopback mode all ranks share a working directory and the
/// children would clobber the same paths. --profile=FILE starts a sampling
/// flame-graph profiler on every rank (loopback children start their own
/// after the fork); the folded stacks ride the same gather, so the file
/// rank 0 writes covers the whole fleet, each stack prefixed `rank:R`.
///
/// Live introspection: --http-port=P serves /metrics (Prometheus),
/// /status (HTML), /healthz and /api/v1/snapshot on every rank while the
/// run is in flight (implies observing). Rank r binds P+r, so a loopback
/// fleet's ranks coexist on one host; P=0 binds kernel-assigned ports,
/// printed at startup. --event-cap=N bounds the trace flight recorder.
///
/// hosts.txt: one `host port` per line, line i = rank i; `#` comments and
/// blank lines ignored. Every rank must name the same instance, seed and
/// algorithm — the rendezvous digest handshake rejects mismatched launches.
///
/// Loopback mode — spawns all N ranks as processes on 127.0.0.1 with
/// kernel-assigned ports (rank 0 in this process):
///
///     distsplit_rank --local=N --input=graph.txt [--algo=...] [--seed=S]
///
/// Results are gathered to rank 0 and re-broadcast, so every rank prints
/// the same summary (prefixed with its rank). Exit code 0 on success, 2 on
/// a failed run (abort, dead peer, bad usage).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "graph/bipartite.hpp"
#include "graph/format.hpp"
#include "graph/graph.hpp"
#include "graph/insitu.hpp"
#include "graph/io.hpp"
#include "local/executor.hpp"
#include "net/insitu_runner.hpp"
#include "net/loopback.hpp"
#include "net/socket.hpp"
#include "net/tcp_network.hpp"
#include "obs/http_server.hpp"
#include "obs/profile.hpp"
#include "obs/publish.hpp"
#include "obs/recorder.hpp"
#include "serve/signal.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "support/provenance.hpp"

namespace {

using namespace ds;

int usage() {
  std::cerr << "usage: distsplit_rank "
               "(--input=FILE | --graph=FILE.dsg | --gen=SPEC)\n"
               "         (--hosts=FILE --rank=R | --local=N)\n"
               "         [--materialize] [--algo=NAME] [--seed=S] "
               "[--param=key=value ...]\n"
               "         [--sndbuf=BYTES] [--rcvbuf=BYTES]\n"
               "         [--metrics=FILE] [--trace=FILE] [--stats]\n"
               "         [--profile=FILE] [--http-port=P] [--event-cap=N]\n"
               "algorithms (distributed-capable registry entries):\n"
            << algo::names_listing(/*scalable_only=*/true);
  return 2;
}

/// Resolves --algo and --param against the registry; bipartite-input specs
/// read the input file in the bipartite format, general ones as an edge
/// list.
struct RankPlan {
  const algo::Spec* spec = nullptr;
  algo::Params params;
  graph::Graph graph;
  graph::BipartiteGraph bipartite;
  /// True: --gen without --materialize — run net::run_insitu, nothing of
  /// the instance is materialized in this process.
  bool insitu = false;
  graph::GenSpec gen;
};

/// The flags this launcher understands itself; anything else must be an
/// algorithm parameter passed as --param=key=value (silently dropping a
/// typo'd or stale flag would change the run's meaning).
const std::vector<std::string> kRankFlags = {
    "input",  "graph",  "gen",    "materialize", "hosts", "rank",
    "local",  "algo",   "seed",   "param",       "sndbuf", "rcvbuf",
    "metrics", "trace", "stats",  "http-port",   "event-cap", "profile",
};

RankPlan resolve(const Options& opts) {
  for (const std::string& key : opts.keys()) {
    if (std::find(kRankFlags.begin(), kRankFlags.end(), key) !=
        kRankFlags.end()) {
      continue;
    }
    std::string msg = "unknown flag '--" + key + "'";
    const std::string hint = algo::suggest(key, kRankFlags);
    if (!hint.empty()) msg += "; did you mean '--" + hint + "'?";
    msg += " (algorithm parameters go through --param=key=value)";
    DS_CHECK_MSG(false, msg);
  }
  RankPlan plan;
  plan.spec = &algo::find(opts.get("algo", "mis"));
  DS_CHECK_MSG(plan.spec->capability == algo::Capability::kAnyRuntime,
               "algorithm '" + plan.spec->name +
                   "' is sequential-only and cannot run on a rank fleet");
  plan.params = algo::Params::parse(
      plan.spec->params, algo::parse_param_overrides(opts.get_all("param")));

  const std::string path = opts.get("input", "");
  const std::string dsg_path = opts.get("graph", "");
  const std::string gen_text = opts.get("gen", "");
  const int sources = static_cast<int>(!path.empty()) +
                      static_cast<int>(!dsg_path.empty()) +
                      static_cast<int>(!gen_text.empty());
  DS_CHECK_MSG(sources == 1,
               "exactly one of --input=FILE, --graph=FILE.dsg or --gen=SPEC "
               "is required");
  const bool general = plan.spec->input == algo::InputKind::kGeneralGraph;
  if (!gen_text.empty()) {
    plan.gen = graph::GenSpec::parse(gen_text);
    if (opts.has("materialize")) {
      // RSS-comparison control / fallback path: the whole instance, fully
      // generated in this process, through the classic executors.
      const graph::DistributedGenerator dg(plan.gen, opts.seed());
      if (general) {
        plan.graph = dg.generate_full();
      } else {
        DS_CHECK_MSG(dg.num_left() > 0,
                     "--algo=" + plan.spec->name +
                         " needs a bipartite instance; only the biregular "
                         "family carries a left/right split");
        plan.bipartite =
            graph::bipartite_from_unified(dg.generate_full(), dg.num_left());
      }
    } else {
      DS_CHECK_MSG(plan.spec->insitu != nullptr,
                   "--gen without --materialize runs in-situ, and "
                   "algorithm '" + plan.spec->name +
                       "' has no in-situ hooks (add --materialize)");
      DS_CHECK_MSG(general,
                   "in-situ: --algo=" + plan.spec->name +
                       " consumes a bipartite instance; the scale path "
                       "runs general-graph specs only (add --materialize)");
      plan.insitu = true;
    }
  } else if (!dsg_path.empty()) {
    graph::DsgHeader header;
    graph::Graph unified = graph::load_dsg(dsg_path, &header);
    if (general) {
      plan.graph = std::move(unified);
    } else {
      DS_CHECK_MSG(header.nu > 0,
                   "--algo=" + plan.spec->name +
                       " needs a bipartite instance, but " + dsg_path +
                       " carries no left/right split");
      plan.bipartite = graph::bipartite_from_unified(
          unified, static_cast<std::size_t>(header.nu));
    }
  } else {
    std::ifstream in(path);
    DS_CHECK_MSG(in.good(), "cannot open input file: " + path);
    if (general) {
      plan.graph = graph::io::read_edge_list(in);
    } else {
      plan.bipartite = graph::io::read_bipartite(in);
    }
  }
  return plan;
}

net::TcpOptions transport_options(const Options& opts) {
  net::TcpOptions topts;
  topts.sndbuf_bytes = static_cast<int>(opts.get_int("sndbuf", 0));
  topts.rcvbuf_bytes = static_cast<int>(opts.get_int("rcvbuf", 0));
  return topts;
}

/// One rank's full run: build this rank's executor factory and execute the
/// registry spec through it. Returns the process exit code.
int run_rank(const RankPlan& plan, const Options& opts, std::size_t rank,
             std::vector<net::Endpoint> hosts, net::Socket listen) {
  const std::size_t nranks = hosts.size();
  net::Socket* first_listen = &listen;
  // The live endpoints need the instruments: --http-port implies observing.
  const bool observe = opts.has("metrics") || opts.has("trace") ||
                       opts.has("stats") || opts.has("http-port") ||
                       opts.has("profile");
  obs::Recorder recorder;
  obs::Recorder* const rec = observe ? &recorder : nullptr;
  if (rec != nullptr) {
    rec->set_lane(static_cast<std::uint32_t>(rank));
    if (opts.has("event-cap")) {
      rec->set_event_capacity(
          static_cast<std::size_t>(opts.get_int("event-cap", 0)));
    }
  }
  // Per-rank sampling profiler. run_rank executes after the loopback fork,
  // so every rank (parent and children alike) arms its own timer; the
  // folded stacks ride the gather and only rank 0 writes the merged file.
  std::unique_ptr<obs::SampledProfiler> profiler;
  if (opts.has("profile")) {
    profiler = std::make_unique<obs::SampledProfiler>();
    rec->set_profiler(profiler.get());
    if (!profiler->start()) {
      std::cout << "[rank " << rank << "/" << nranks
                << "] profile: sampling unavailable (" << profiler->error()
                << ")" << std::endl;
    }
  }
  // Live introspection: every rank serves its own endpoints. A base port P
  // maps rank r to P+r (loopback ranks share one host); P=0 lets the
  // kernel pick, printed below. Declared before the server so the server
  // (a publisher reader) is torn down first.
  obs::SnapshotPublisher publisher;
  std::unique_ptr<obs::HttpServer> http;
  if (opts.has("http-port")) {
    rec->set_publisher(&publisher);
    std::vector<std::pair<std::string, std::string>> info = {
        {"tool", "distsplit_rank"},
        {"algo", plan.spec->name},
        {"runtime", std::string(plan.insitu ? "insitu-tcp(" : "tcp(") +
                        std::to_string(nranks) + " ranks)"},
        {"rank", std::to_string(rank)},
        {"seed", std::to_string(opts.seed())},
    };
    for (const auto& kv : Provenance::get().context()) info.push_back(kv);
    publisher.set_info(std::move(info));
    if (profiler != nullptr) {
      // Live view of this rank's own ring (the merged fleet profile only
      // exists after the end-of-run gather); reads without draining.
      obs::SampledProfiler* const prof = profiler.get();
      const std::string prefix =
          rec->lane_kind() + ":" + std::to_string(rec->lane());
      publisher.set_profile_source([prof, prefix] {
        std::ostringstream folded;
        obs::SampledProfiler::write_folded(folded,
                                           prof->collect_folded(prefix));
        return folded.str();
      });
    }
    const auto base = opts.get_int("http-port", 0);
    http = std::make_unique<obs::HttpServer>(
        publisher,
        static_cast<std::uint16_t>(base == 0 ? 0 : base + rank));
    std::cout << "[rank " << rank << "/" << nranks
              << "] http: listening on port " << http->port()
              << " (/metrics /status /healthz /api/v1/snapshot)" << std::endl;
    publisher.run_started(plan.spec->name);
  }
  std::string brief;
  try {
  if (plan.insitu) {
    // Scale path: nothing of the instance exists yet in this process; the
    // runner generates this rank's range behind the rendezvous.
    net::InsituConfig config;
    config.rank = rank;
    config.hosts = std::move(hosts);
    config.transport = transport_options(opts);
    config.listen = std::move(listen);
    brief = net::run_insitu(*plan.spec, plan.params, opts.seed(), plan.gen,
                            std::move(config), rec)
                .brief();
  } else {
    algo::RunContext ctx;
    ctx.seed = opts.seed();
    ctx.params = plan.params;
    ctx.sequential_runtime = false;
    ctx.recorder = rec;
    ctx.factory = [&](const graph::Graph& fg, local::IdStrategy strategy,
                      std::uint64_t seed) -> std::unique_ptr<local::Executor> {
      net::TcpNetworkConfig config;
      config.rank = rank;
      config.hosts = hosts;
      config.transport = transport_options(opts);
      // The pre-bound socket (loopback mode) only serves the first
      // executor; a later one rebinds the known port itself.
      config.listen = std::move(*first_listen);
      auto exec = std::make_unique<net::TcpNetwork>(fg, strategy, seed,
                                                    std::move(config));
      exec->set_recorder(rec);
      return exec;
    };
    if (plan.spec->input == algo::InputKind::kGeneralGraph) {
      ctx.graph = &plan.graph;
    } else {
      ctx.bipartite = &plan.bipartite;
    }
    brief = algo::execute(*plan.spec, ctx).brief();
  }
  } catch (...) {
    // /healthz must answer 503 on this rank even when the abort originated
    // here (the transport only flips peers' health via the kAbort frame).
    if (http != nullptr) publisher.run_finished(/*ok=*/false);
    throw;
  }
  if (http != nullptr) publisher.run_finished(/*ok=*/true);
  // Explicit flush: loopback child ranks leave via _exit, skipping stdio
  // teardown, and their summary must not die in a buffer with them.
  std::cout << "[rank " << rank << "/" << nranks << "] " << plan.spec->name
            << ": " << brief << std::endl;
  if (profiler != nullptr) profiler->stop();
  // Every rank merged the fleet's observability blocks, but only rank 0
  // writes — loopback children would clobber the same paths.
  if (rec != nullptr && rank == 0) {
    const std::string metrics_path = opts.get("metrics", "");
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      DS_CHECK_MSG(out.good(),
                   "cannot open metrics output file: " + metrics_path);
      std::vector<std::pair<std::string, std::string>> context = {
          {"algo", plan.spec->name},
          {"runtime", std::string(plan.insitu ? "insitu-tcp(" : "tcp(") +
                          std::to_string(nranks) + " ranks)"},
          {"seed", std::to_string(opts.seed())}};
      for (const auto& kv : Provenance::get().context()) {
        context.push_back(kv);
      }
      rec->write_metrics_json(out, context);
      out.flush();
      DS_CHECK_MSG(out.good(),
                   "failed writing metrics output file: " + metrics_path);
    }
    const std::string trace_path = opts.get("trace", "");
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      DS_CHECK_MSG(out.good(), "cannot open trace output file: " + trace_path);
      rec->write_trace_json(out);
      out.flush();
      DS_CHECK_MSG(out.good(),
                   "failed writing trace output file: " + trace_path);
    }
    const std::string profile_path = opts.get("profile", "");
    if (!profile_path.empty()) {
      // The gather already merged every rank's drained folded stacks; this
      // absorbs rank 0's own post-gather tail samples on top.
      rec->absorb_profiler();
      std::ofstream out(profile_path);
      DS_CHECK_MSG(out.good(),
                   "cannot open profile output file: " + profile_path);
      rec->write_folded(out);
      out.flush();
      DS_CHECK_MSG(out.good(),
                   "failed writing profile output file: " + profile_path);
      std::cout << "[rank " << rank << "/" << nranks << "] profile: "
                << profile_path << " (" << rec->folded().size()
                << " stacks)" << std::endl;
    }
    if (opts.has("stats")) {
      rec->write_stats_table(std::cout);
      std::cout.flush();
    }
  }
  if (serve::shutdown_requested()) {
    // The latch swallowed a SIGINT/SIGTERM so the collectives could finish
    // instead of tearing the fleet mid-exchange; the run is complete, so a
    // clean exit 0 is the graceful answer.
    std::cout << "[rank " << rank << "/" << nranks
              << "] shutdown requested; exiting after the in-flight run"
              << std::endl;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Latch SIGINT/SIGTERM instead of dying mid-collective: an interrupted
    // rank would otherwise tear the whole fleet down as a peer-lost abort.
    serve::install_shutdown_handler();
    // Options skips argv[0] itself; this tool has no subcommand word.
    const Options opts(argc, argv);
    const auto local = opts.get_int("local", 0);
    const RankPlan plan = resolve(opts);
    if (local > 0) {
      // Loopback fleet: forked ranks on kernel-assigned 127.0.0.1 ports.
      const auto report = net::run_loopback_ranks(
          static_cast<std::size_t>(local), [&](net::LoopbackRank&& lr) {
            return run_rank(plan, opts, lr.rank, std::move(lr.hosts),
                            std::move(lr.listen));
          });
      if (!report.all_ok()) {
        std::cerr << "error: a rank failed (rank 0 -> " << report.rank0;
        for (std::size_t r = 0; r < report.peer_exit_codes.size(); ++r) {
          std::cerr << ", rank " << (r + 1) << " -> "
                    << report.peer_exit_codes[r];
        }
        std::cerr << ")\n";
        return 2;
      }
      return 0;
    }
    const std::string hosts_path = opts.get("hosts", "");
    if (hosts_path.empty()) return usage();
    const auto hosts = net::read_hosts_file(hosts_path);
    const auto rank = static_cast<std::size_t>(opts.get_int("rank", 0));
    DS_CHECK_MSG(rank < hosts.size(),
                 "--rank must be < the hosts file size (" +
                     std::to_string(hosts.size()) + ")");
    return run_rank(plan, opts, rank, hosts, net::Socket{});
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
