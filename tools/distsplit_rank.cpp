/// \file distsplit_rank.cpp
/// Multi-host rank launcher: runs one rank of a TCP-distributed LOCAL
/// algorithm (or, with --local=N, a whole loopback fleet on this machine —
/// the quickest way to smoke-test the wire path without a cluster).
///
/// Multi-host usage — run once per hosts-file line, anywhere the hosts
/// resolve, in any order (the rendezvous retries until the fleet is up):
///
///     distsplit_rank --hosts=hosts.txt --rank=R --input=graph.txt
///         [--algo=mis|color|sinkless] [--seed=S] [--max-rounds=N]
///         [--sndbuf=BYTES] [--rcvbuf=BYTES]
///
/// hosts.txt: one `host port` per line, line i = rank i; `#` comments and
/// blank lines ignored. Every rank must name the same instance, seed and
/// algorithm — the rendezvous digest handshake rejects mismatched launches.
///
/// Loopback mode — spawns all N ranks as processes on 127.0.0.1 with
/// kernel-assigned ports (rank 0 in this process):
///
///     distsplit_rank --local=N --input=graph.txt [--algo=...] [--seed=S]
///
/// Results are gathered to rank 0 and re-broadcast, so every rank prints
/// the same summary (prefixed with its rank). Exit code 0 on success, 2 on
/// a failed run (abort, dead peer, bad usage).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "coloring/randcolor.hpp"
#include "coloring/verify.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "local/executor.hpp"
#include "mis/mis.hpp"
#include "net/loopback.hpp"
#include "net/socket.hpp"
#include "net/tcp_network.hpp"
#include "orient/sinkless.hpp"
#include "support/check.hpp"
#include "support/options.hpp"

namespace {

using namespace ds;

int usage() {
  std::cerr << "usage: distsplit_rank --input=FILE\n"
               "         (--hosts=FILE --rank=R | --local=N)\n"
               "         [--algo=mis|color|sinkless] [--seed=S]\n"
               "         [--max-rounds=N] [--sndbuf=BYTES] [--rcvbuf=BYTES]\n";
  return 2;
}

/// Runs the selected algorithm on one rank's executor factory and returns
/// the per-rank summary line (identical on every rank by the determinism
/// contract).
std::string run_algorithm(const graph::Graph& g, const Options& opts,
                          const local::ExecutorFactory& factory) {
  const std::string algo = opts.get("algo", "mis");
  const auto max_rounds =
      static_cast<std::size_t>(opts.get_int("max-rounds", 10000));
  std::ostringstream out;
  if (algo == "mis") {
    const auto outcome = mis::luby(g, opts.seed(), nullptr, max_rounds,
                                   local::IdStrategy::kSequential, factory);
    std::size_t size = 0;
    for (const bool b : outcome.in_mis) size += b ? 1 : 0;
    out << "luby mis: size " << size << ", " << outcome.executed_rounds
        << " rounds";
  } else if (algo == "color") {
    const auto outcome =
        coloring::randomized_coloring(g, opts.seed(), nullptr, max_rounds,
                                      local::IdStrategy::kSequential, factory);
    out << "randomized coloring: " << outcome.num_colors << " colors ("
        << (coloring::is_proper_coloring(g, outcome.colors) ? "proper"
                                                            : "IMPROPER")
        << "), " << outcome.executed_rounds << " rounds";
  } else if (algo == "sinkless") {
    const auto outcome = orient::sinkless_program(
        g, opts.seed(), 3, nullptr,
        static_cast<std::size_t>(opts.get_int("max-rounds", 30)), factory);
    out << "sinkless orientation: " << outcome.trials << " trials, "
        << outcome.executed_rounds << " rounds";
  } else {
    DS_CHECK_MSG(false, "--algo must be 'mis', 'color' or 'sinkless'");
  }
  return out.str();
}

graph::Graph load_graph(const Options& opts) {
  const std::string path = opts.get("input", "");
  DS_CHECK_MSG(!path.empty(), "--input=FILE is required");
  std::ifstream in(path);
  DS_CHECK_MSG(in.good(), "cannot open input file: " + path);
  return graph::io::read_edge_list(in);
}

net::TcpOptions transport_options(const Options& opts) {
  net::TcpOptions topts;
  topts.sndbuf_bytes = static_cast<int>(opts.get_int("sndbuf", 0));
  topts.rcvbuf_bytes = static_cast<int>(opts.get_int("rcvbuf", 0));
  return topts;
}

/// One rank's full run: build the executor factory for this rank and
/// execute the algorithm. Returns the process exit code.
int run_rank(const graph::Graph& g, const Options& opts, std::size_t rank,
             std::vector<net::Endpoint> hosts, net::Socket listen) {
  net::Socket* first_listen = &listen;
  const local::ExecutorFactory factory =
      [&](const graph::Graph& fg, local::IdStrategy strategy,
          std::uint64_t seed) -> std::unique_ptr<local::Executor> {
    net::TcpNetworkConfig config;
    config.rank = rank;
    config.hosts = hosts;
    config.transport = transport_options(opts);
    // The pre-bound socket (loopback mode) only serves the first executor;
    // a later one rebinds the known port itself.
    config.listen = std::move(*first_listen);
    return std::make_unique<net::TcpNetwork>(fg, strategy, seed,
                                             std::move(config));
  };
  const std::string summary = run_algorithm(g, opts, factory);
  // Explicit flush: loopback child ranks leave via _exit, skipping stdio
  // teardown, and their summary must not die in a buffer with them.
  std::cout << "[rank " << rank << "/" << hosts.size() << "] " << summary
            << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Options skips argv[0] itself; this tool has no subcommand word.
    const Options opts(argc, argv);
    const auto local = opts.get_int("local", 0);
    const graph::Graph g = load_graph(opts);
    if (local > 0) {
      // Loopback fleet: forked ranks on kernel-assigned 127.0.0.1 ports.
      const auto report = net::run_loopback_ranks(
          static_cast<std::size_t>(local), [&](net::LoopbackRank&& lr) {
            return run_rank(g, opts, lr.rank, std::move(lr.hosts),
                            std::move(lr.listen));
          });
      if (!report.all_ok()) {
        std::cerr << "error: a rank failed (rank 0 -> " << report.rank0;
        for (std::size_t r = 0; r < report.peer_exit_codes.size(); ++r) {
          std::cerr << ", rank " << (r + 1) << " -> "
                    << report.peer_exit_codes[r];
        }
        std::cerr << ")\n";
        return 2;
      }
      return 0;
    }
    const std::string hosts_path = opts.get("hosts", "");
    if (hosts_path.empty()) return usage();
    const auto hosts = net::read_hosts_file(hosts_path);
    const auto rank = static_cast<std::size_t>(opts.get_int("rank", 0));
    DS_CHECK_MSG(rank < hosts.size(),
                 "--rank must be < the hosts file size (" +
                     std::to_string(hosts.size()) + ")");
    return run_rank(g, opts, rank, hosts, net::Socket{});
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
