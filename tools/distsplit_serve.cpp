/// \file distsplit_serve.cpp
/// Resident serving daemon: loads an instance once, rendezvouses a standing
/// TCP fleet once, then serves registry submissions (`distsplit_cli
/// submit`) over the standing connections until told to stop — no
/// per-request process launch, rendezvous, or re-partitioning.
///
/// Multi-host usage — run once per hosts-file line, like distsplit_rank:
///
///     distsplit_serve (--input=graph.txt | --graph=FILE.dsg | --gen=SPEC)
///         --hosts=hosts.txt --rank=R
///         [--port=P] [--queue-cap=N] [--seed=S]
///         [--sndbuf=BYTES] [--rcvbuf=BYTES]
///         [--http-port=P] [--event-cap=N]
///
/// Rank 0 prints `serve: listening on port P` once the fleet is up and
/// accepts framed requests on that port (serve/protocol.hpp); the other
/// ranks execute the dispatched runs in lockstep. --seed is the *instance*
/// seed (--gen); each submission carries its own run seed.
///
/// Loopback mode — the whole fleet as forked processes on 127.0.0.1:
///
///     distsplit_serve --local=N --input=graph.txt [--port=P]
///
/// Observability: --http-port=P serves /metrics /status /healthz
/// /api/v1/snapshot /api/v1/runs per rank (rank r binds P+r), with the
/// serve counters (`distsplit_serve_requests_total`, queue depth, request
/// latency) and the served-run history ring.
///
/// Shutdown: SIGINT/SIGTERM drains the accepted requests, answers further
/// submissions `kRejected` ("daemon is draining", /healthz 503), releases
/// the follower ranks with a kShutdown broadcast, and exits 0.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "graph/format.hpp"
#include "graph/graph.hpp"
#include "graph/insitu.hpp"
#include "graph/io.hpp"
#include "net/loopback.hpp"
#include "net/socket.hpp"
#include "obs/http_server.hpp"
#include "obs/publish.hpp"
#include "obs/recorder.hpp"
#include "serve/daemon.hpp"
#include "serve/signal.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "support/provenance.hpp"

namespace {

using namespace ds;

int usage() {
  std::cerr << "usage: distsplit_serve "
               "(--input=FILE | --graph=FILE.dsg | --gen=SPEC)\n"
               "         (--hosts=FILE --rank=R | --local=N)\n"
               "         [--port=P] [--queue-cap=N] [--seed=S]\n"
               "         [--sndbuf=BYTES] [--rcvbuf=BYTES]\n"
               "         [--http-port=P] [--event-cap=N]\n"
               "submissions name any distributed-capable registry entry:\n"
            << algo::names_listing(/*scalable_only=*/true);
  return 2;
}

/// The daemon's resident instance: always the unified graph, plus the
/// left-node count when the source carries a bipartite split (so
/// bipartite-input specs can be served too).
struct ServePlan {
  graph::Graph graph;
  std::size_t nu = 0;
};

const std::vector<std::string> kServeFlags = {
    "input", "graph",     "gen",    "hosts",  "rank",      "local",
    "seed",  "port",      "queue-cap", "sndbuf", "rcvbuf", "http-port",
    "event-cap",
};

ServePlan resolve(const Options& opts) {
  for (const std::string& key : opts.keys()) {
    if (std::find(kServeFlags.begin(), kServeFlags.end(), key) !=
        kServeFlags.end()) {
      continue;
    }
    std::string msg = "unknown flag '--" + key + "'";
    const std::string hint = algo::suggest(key, kServeFlags);
    if (!hint.empty()) msg += "; did you mean '--" + hint + "'?";
    msg += " (per-run parameters travel with each submission)";
    DS_CHECK_MSG(false, msg);
  }
  ServePlan plan;
  const std::string path = opts.get("input", "");
  const std::string dsg_path = opts.get("graph", "");
  const std::string gen_text = opts.get("gen", "");
  const int sources = static_cast<int>(!path.empty()) +
                      static_cast<int>(!dsg_path.empty()) +
                      static_cast<int>(!gen_text.empty());
  DS_CHECK_MSG(sources == 1,
               "exactly one of --input=FILE, --graph=FILE.dsg or --gen=SPEC "
               "is required");
  if (!gen_text.empty()) {
    const graph::DistributedGenerator dg(graph::GenSpec::parse(gen_text),
                                         opts.seed());
    plan.graph = dg.generate_full();
    plan.nu = dg.num_left();
  } else if (!dsg_path.empty()) {
    graph::DsgHeader header;
    plan.graph = graph::load_dsg(dsg_path, &header);
    plan.nu = static_cast<std::size_t>(header.nu);
  } else {
    std::ifstream in(path);
    DS_CHECK_MSG(in.good(), "cannot open input file: " + path);
    plan.graph = graph::io::read_edge_list(in);
  }
  return plan;
}

/// One rank's resident daemon. Returns the process exit code.
int run_serve(const ServePlan& plan, const Options& opts, std::size_t rank,
              std::vector<net::Endpoint> hosts, net::Socket listen) {
  const std::size_t nranks = hosts.size();
  const bool observe = opts.has("http-port");
  obs::Recorder recorder;
  obs::Recorder* const rec = observe ? &recorder : nullptr;
  if (rec != nullptr) {
    rec->set_lane(static_cast<std::uint32_t>(rank));
    if (opts.has("event-cap")) {
      rec->set_event_capacity(
          static_cast<std::size_t>(opts.get_int("event-cap", 0)));
    }
  }
  // Declared before the server: the server (a publisher reader) must be
  // torn down first.
  obs::SnapshotPublisher publisher;
  std::unique_ptr<obs::HttpServer> http;
  if (observe) {
    rec->set_publisher(&publisher);
    std::vector<std::pair<std::string, std::string>> info = {
        {"tool", "distsplit_serve"},
        {"runtime", "serve-tcp(" + std::to_string(nranks) + " ranks)"},
        {"rank", std::to_string(rank)},
    };
    for (const auto& kv : Provenance::get().context()) info.push_back(kv);
    publisher.set_info(std::move(info));
    const auto base = opts.get_int("http-port", 0);
    http = std::make_unique<obs::HttpServer>(
        publisher, static_cast<std::uint16_t>(base == 0 ? 0 : base + rank));
    std::cout << "[rank " << rank << "/" << nranks
              << "] http: listening on port " << http->port()
              << " (/metrics /status /healthz /api/v1/snapshot /api/v1/runs)"
              << std::endl;
  }

  serve::DaemonConfig config;
  config.rank = rank;
  config.hosts = std::move(hosts);
  config.listen = std::move(listen);
  config.transport.sndbuf_bytes = static_cast<int>(opts.get_int("sndbuf", 0));
  config.transport.rcvbuf_bytes = static_cast<int>(opts.get_int("rcvbuf", 0));
  config.graph = &plan.graph;
  config.nu = plan.nu;
  config.request_port =
      static_cast<std::uint16_t>(opts.get_int("port", 0));
  config.queue_capacity = static_cast<std::size_t>(
      opts.get_int("queue-cap", 16));
  config.stop_requested = [] { return serve::shutdown_requested(); };
  config.recorder = rec;
  config.publisher = observe ? &publisher : nullptr;

  serve::Daemon daemon(std::move(config));
  if (rank == 0) {
    // The line scripts and CI wait for before submitting. Explicit flush:
    // the daemon lives until a signal, and the port must not sit in a
    // stdio buffer meanwhile.
    std::cout << "serve: listening on port " << daemon.request_port()
              << std::endl;
  }
  const int code = daemon.run();
  const serve::Daemon::Stats stats = daemon.stats();
  std::cout << "[rank " << rank << "/" << nranks << "] serve: exiting ("
            << stats.served << " served, " << stats.failed << " failed, "
            << stats.rejected << " rejected, partition cache "
            << stats.cache_hits << " hits / " << stats.cache_misses
            << " misses)" << std::endl;
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts(argc, argv);
    serve::install_shutdown_handler();
    const ServePlan plan = resolve(opts);
    const auto local = opts.get_int("local", 0);
    if (local > 0) {
      const auto report = net::run_loopback_ranks(
          static_cast<std::size_t>(local), [&](net::LoopbackRank&& lr) {
            return run_serve(plan, opts, lr.rank, std::move(lr.hosts),
                             std::move(lr.listen));
          });
      if (!report.all_ok()) {
        std::cerr << "error: a rank failed (rank 0 -> " << report.rank0;
        for (std::size_t r = 0; r < report.peer_exit_codes.size(); ++r) {
          std::cerr << ", rank " << (r + 1) << " -> "
                    << report.peer_exit_codes[r];
        }
        std::cerr << ")\n";
        return 2;
      }
      return 0;
    }
    const std::string hosts_path = opts.get("hosts", "");
    if (hosts_path.empty()) return usage();
    const auto hosts = net::read_hosts_file(hosts_path);
    const auto rank = static_cast<std::size_t>(opts.get_int("rank", 0));
    DS_CHECK_MSG(rank < hosts.size(),
                 "--rank must be < the hosts file size (" +
                     std::to_string(hosts.size()) + ")");
    return run_serve(plan, opts, rank, hosts, net::Socket{});
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
